"""From "do not disclose" to a safe release: the protection workflow.

The recipe on the CONNECT-style benchmark says "think twice" (alpha_max
around 0.2 at tau = 0.1).  Instead of withholding the data, the owner can
reshape it: this example walks the full protection workflow the library
adds on top of the paper —

1. assess the raw release and render the per-item risk profile;
2. look at the delta-sensitivity and tolerance curves to understand why
   the release is risky;
3. search the smallest binning intervention that meets the tolerance and
   compare strategies;
4. re-assess the protected release and file the decision as JSON.

Run with::

    python examples/protected_release.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    RiskProfile,
    assess_risk,
    delta_sensitivity,
    load_benchmark,
    protect_to_tolerance,
    tolerance_curve,
    uniform_width_belief,
)
from repro.data import FrequencyGroups
from repro.graph import space_from_frequencies
from repro.io import assessment_to_json, save_json

TAU = 0.1


def main() -> None:
    profile = load_benchmark("connect").profile
    frequencies = profile.frequencies()
    rng = np.random.default_rng(0)

    # -- 1. raw assessment + per-item attribution -------------------------
    raw_report = assess_risk(profile, TAU, rng=rng)
    print("raw release:")
    print(raw_report.summary())

    delta = FrequencyGroups(frequencies).median_gap()
    space = space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)
    risk = RiskProfile.from_space(space)
    print(f"\n{risk.n_surely_cracked} items are identified with certainty; "
          "the 5 most exposed:")
    for item_risk in risk.top_exposed(5):
        print(f"  item {item_risk.item}: frequency {item_risk.frequency:.4f}, "
              f"crack probability {item_risk.crack_probability:.0%}")

    # -- 2. why: sensitivity curves ----------------------------------------
    print("\nhow fast does camouflage build with assumed uncertainty?")
    for point in delta_sensitivity(frequencies, [delta, 4 * delta, 16 * delta]):
        print(f"  delta = {point.delta:.5f}: expected cracks {point.estimate:6.1f} "
              f"({point.fraction:.0%})")
    print("tolerance -> alpha_max trade-off:")
    for point in tolerance_curve(space, [0.05, 0.1, 0.2, 0.4], rng=rng):
        print(f"  tau = {point.tolerance:4.2f}: alpha_max = {point.alpha_max:.2f}")

    # -- 3. protect ----------------------------------------------------------
    print("\nsearching the smallest intervention per strategy:")
    plans = {}
    for strategy in ("bin", "quantile", "suppress"):
        plans[strategy] = protect_to_tolerance(profile, TAU, strategy=strategy)
        print(f"  {plans[strategy].summary()}")

    chosen = plans["quantile"]
    protected = chosen.profile

    # -- 4. re-assess and file the decision ----------------------------------
    protected_report = assess_risk(protected, TAU, rng=rng)
    print("\nprotected release:")
    print(protected_report.summary())
    save_json(assessment_to_json(protected_report), "protected_assessment.json")
    print("decision filed to protected_assessment.json")


if __name__ == "__main__":
    main()

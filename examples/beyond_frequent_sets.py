"""Section 8 of the paper: beyond frequent sets.

Two extensions on the paper's own examples:

1. **Relational release (Section 8.1).**  A clinical-trial-style relation
   (age, ethnicity, car-model in the paper's example) is released with
   names replaced by row numbers.  The hacker holds scattered facts —
   "John is Chinese owning a Toyota", "Mary's age is between 30 and 35",
   nothing about Bob.  We build the consistent-mapping graph from those
   facts and re-apply every tool: O-estimate, propagation, exact
   expectation.
2. **Itemset identities (Section 8.2).**  Even when no single item can
   be cracked, whole *sets* may be indisputably identified (Figure 6(b):
   {1',2'} maps onto {1,2}).  We compute all forced identifications.

Run with::

    python examples/beyond_frequent_sets.py
"""

from __future__ import annotations

from repro import ExplicitMappingSpace, o_estimate
from repro.extensions import (
    AttributeKnowledge,
    Between,
    Exactly,
    Relation,
    build_relational_space,
    itemset_identifications,
    surely_cracked_items,
)
from repro.graph import expected_cracks_direct


def relational_example() -> None:
    relation = Relation(
        attributes=("age", "ethnicity", "car_model"),
        rows={
            "John": (42, "Chinese", "Toyota"),
            "Mary": (33, "Greek", "Volvo"),
            "Bob": (27, "Chinese", "Toyota"),
            "Alice": (33, "Greek", "Honda"),
            "Wei": (51, "Chinese", "Honda"),
            "Nina": (29, "Greek", "Toyota"),
        },
    )
    knowledge = AttributeKnowledge(
        {
            "John": {"ethnicity": Exactly("Chinese"), "car_model": Exactly("Toyota")},
            "Mary": {"age": Between(30, 35)},
            "Wei": {"age": Between(45, 60)},
        }
    )

    space = build_relational_space(relation, knowledge)
    print("Section 8.1 — anonymized relation under scattered facts")
    print(f"  individuals: {', '.join(map(str, relation.individuals))}")
    for item in relation.individuals:
        index = space.item_index(item)
        print(f"  {item:>6}: consistent with {space.outdegree(index)} released rows")

    estimate = o_estimate(space)
    exact = expected_cracks_direct(space)
    print(f"  O-estimate = {estimate.value:.2f}, exact = {exact:.2f} of {space.n}")
    certain = surely_cracked_items(space)
    if certain:
        print(f"  identified with certainty: {', '.join(map(str, certain))}")


def itemset_example() -> None:
    # Figure 6(b): nothing separates 1' from 2', or 3' from 4', yet the
    # pairs are pinned as sets.
    space = ExplicitMappingSpace(
        items=(1, 2, 3, 4),
        anonymized=("1'", "2'", "3'", "4'"),
        adjacency=[[0, 1], [0, 1], [1, 2, 3], [2, 3]],
        true_partner_of=[0, 1, 2, 3],
    )
    print("\nSection 8.2 — forced itemset identifications (Figure 6(b))")
    for block in itemset_identifications(space):
        kind = "SURE CRACK" if block.is_sure_crack else "forced set"
        print(f"  {kind}: {set(block.anonymized)} -> {set(block.items)}")
    print(
        "  (the hacker cannot crack any single item, but learns both "
        "two-element identities with certainty)"
    )


if __name__ == "__main__":
    relational_example()
    itemset_example()

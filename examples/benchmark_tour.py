"""A tour of the calibrated Figure 9 benchmarks.

Loads every calibrated dataset, prints its structure, walks the
Assess-Risk recipe at a few tolerances, and renders a text version of the
Figure 11 alpha-sweep for one dataset of your choice.

Run with::

    python examples/benchmark_tour.py [dataset]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BENCHMARK_NAMES, alpha_curve, assess_risk, load_benchmark, o_estimate
from repro.beliefs import uniform_width_belief
from repro.data import FrequencyGroups
from repro.graph import space_from_frequencies


def tour() -> None:
    print(f"{'dataset':>10} {'items':>7} {'trans':>8} {'groups':>7} "
          f"{'singletons':>11} {'tau=0.05':>22} {'tau=0.2':>22}")
    for name in BENCHMARK_NAMES:
        dataset = load_benchmark(name)
        profile = dataset.profile
        groups = FrequencyGroups.from_source(profile)
        cells = []
        for tau in (0.05, 0.2):
            report = assess_risk(profile, tau, rng=np.random.default_rng(0))
            if report.disclose:
                cells.append("disclose")
            else:
                cells.append(f"alpha_max={report.alpha_max:.2f}")
        print(f"{name:>10} {len(profile.domain):>7} {profile.n_transactions:>8} "
              f"{len(groups):>7} {groups.n_singletons:>11} "
              f"{cells[0]:>22} {cells[1]:>22}")


def sweep(name: str) -> None:
    dataset = load_benchmark(name)
    frequencies = dataset.profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    space = space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)
    estimate = o_estimate(space)
    print(f"\n{name}: fully compliant O-estimate = {estimate.value:.1f} "
          f"({estimate.fraction:.1%} of {space.n} items)")
    print(f"alpha sweep (Figure 11), fraction of domain cracked:")
    alphas = [i / 10 for i in range(11)]
    curve = alpha_curve(space, alphas, runs=5, rng=np.random.default_rng(1))
    peak = max(curve.fractions) or 1.0
    for alpha, fraction in zip(curve.alphas, curve.fractions):
        bar = "#" * round(fraction / peak * 50)
        print(f"  alpha={alpha:>4.1f}  {fraction:>7.4f}  {bar}")


if __name__ == "__main__":
    tour()
    sweep(sys.argv[1] if len(sys.argv) > 1 else "connect")

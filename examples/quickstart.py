"""Quickstart: anonymize a database, assess the disclosure risk, decide.

Walks the full owner workflow of the paper on a small retail-style
basket database:

1. build the database and anonymize it;
2. check that mining the released data yields the original patterns
   (why anonymization is attractive);
3. model hackers of increasing knowledge with belief functions and
   compute exact / estimated expected cracks (why it is risky);
4. run the Assess-Risk recipe (Figure 8) to make the call.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    TransactionDatabase,
    anonymize,
    apriori,
    assess_risk,
    expected_cracks_point_valued,
    ignorant_belief,
    o_estimate,
    point_belief,
    space_from_anonymized,
    uniform_width_belief,
)
from repro.data import FrequencyGroups


def build_database() -> TransactionDatabase:
    """A BigMart-style basket database over 8 products."""
    rng = np.random.default_rng(42)
    products = ["milk", "bread", "beer", "diapers", "caviar", "eggs", "cola", "tofu"]
    popularity = [0.7, 0.6, 0.4, 0.4, 0.05, 0.5, 0.3, 0.1]
    transactions = []
    for _ in range(500):
        basket = {p for p, f in zip(products, popularity) if rng.random() < f}
        if not basket:
            basket = {"milk"}
        transactions.append(basket)
    return TransactionDatabase(transactions, domain=products)


def main() -> None:
    db = build_database()
    print(f"owner database: {len(db.domain)} products, {db.n_transactions} baskets")

    # -- 1. release an anonymized view -----------------------------------
    released = anonymize(db, rng=np.random.default_rng(7))
    print(f"released view : items renamed to {sorted(released.database.domain)[:4]} ...")

    # -- 2. mining still works on the released data ----------------------
    original_patterns = apriori(db, min_support=0.25)
    released_patterns = apriori(released.database, min_support=0.25)
    print(
        f"frequent itemsets at 25% support: {len(original_patterns)} original, "
        f"{len(released_patterns)} on the released data (same up to renaming)"
    )

    # -- 3. how many identities would hackers recover? -------------------
    frequencies = db.frequencies()

    ignorant_space = space_from_anonymized(ignorant_belief(db.domain), released)
    print(
        "\nhacker with no knowledge (Lemma 1):        "
        f"expected cracks = {o_estimate(ignorant_space).value:.2f} of {len(db.domain)}"
    )

    print(
        "hacker knowing every frequency (Lemma 3):  "
        f"expected cracks = {expected_cracks_point_valued(frequencies):.2f}"
    )

    delta = FrequencyGroups(frequencies).median_gap()
    ballpark = uniform_width_belief(frequencies, delta)
    ballpark_space = space_from_anonymized(ballpark, released)
    estimate = o_estimate(ballpark_space)
    print(
        "hacker with ball-park frequencies (O-est): "
        f"expected cracks = {estimate.value:.2f} "
        f"({estimate.fraction:.0%} of the catalogue)"
    )

    # -- 4. the recipe makes the call -------------------------------------
    print("\nAssess-Risk recipe (Figure 8), tolerance tau = 0.25:")
    report = assess_risk(db, tolerance=0.25, rng=np.random.default_rng(1))
    print(report.summary())


if __name__ == "__main__":
    main()

"""Service-layer benchmarks: cache speedup, sweep reuse, batch scaling.

Acceptance measurements for the service layer:

* warm (cached) ``assess()`` on a repeated (profile, params) pair must
  be >= 10x faster than the cold computation;
* ``assess_many()`` with 4 workers must beat 1 worker on an 8-dataset
  batch **when more than one CPU is available** (on a single-CPU host
  the comparison is reported but the speedup is not asserted), while
  producing byte-identical JSON results either way.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -s --benchmark-disable
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.datasets import load_benchmark
from repro.io import assessment_to_json
from repro.recipe import assess_risk
from repro.service import AssessmentCache, AssessmentEngine, AssessmentParams
from repro.service.faults import fault_point

BATCH_BENCHMARKS = ("retail", "pumsb", "accidents", "connect")


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _batch_requests():
    """8 distinct heavy questions over the four largest benchmarks."""
    requests = []
    for round_index in range(2):
        for name in BATCH_BENCHMARKS:
            profile = load_benchmark(name).profile
            requests.append(
                (
                    profile,
                    AssessmentParams(
                        tolerance=0.01 + 0.02 * round_index, runs=25
                    ),
                )
            )
    return requests


def test_service_cold_vs_warm(report):
    """Warm-cache assess() must be >= 10x faster than the cold pass."""
    profile = load_benchmark("retail").profile
    engine = AssessmentEngine()

    start = time.perf_counter()
    cold = engine.assess(profile, 0.01, runs=25)
    cold_seconds = time.perf_counter() - start
    assert not cold.cached

    warm_seconds = []
    for _ in range(5):
        start = time.perf_counter()
        warm = engine.assess(profile, 0.01, runs=25)
        warm_seconds.append(time.perf_counter() - start)
        assert warm.cached and warm.assessment == cold.assessment
    best_warm = min(warm_seconds)

    speedup = cold_seconds / best_warm
    report(
        "service_cold_vs_warm",
        [
            f"cold assess (retail, tau=0.01, runs=25): {cold_seconds * 1e3:8.2f} ms",
            f"warm assess (cache hit, best of 5):      {best_warm * 1e3:8.4f} ms",
            f"speedup: {speedup:,.0f}x (acceptance floor: 10x)",
        ],
    )
    assert speedup >= 10.0


def test_service_sweep_reuses_space(report):
    """A tolerance sweep through the engine beats one-shot re-assessment."""
    profile = load_benchmark("retail").profile
    tolerances = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1]

    start = time.perf_counter()
    naive = [assess_risk(profile, tolerance) for tolerance in tolerances]
    naive_seconds = time.perf_counter() - start

    engine = AssessmentEngine()
    start = time.perf_counter()
    swept = engine.sweep_tolerance(profile, tolerances)
    sweep_seconds = time.perf_counter() - start

    assert [outcome.assessment.decision for outcome in swept] == [
        result.decision for result in naive
    ]
    spaces_built = engine.metrics.snapshot()["timers"]["stage:space"]["count"]
    report(
        "service_sweep_reuse",
        [
            f"{len(tolerances)}-point tolerance sweep on retail",
            f"one-shot assess_risk per point: {naive_seconds:7.3f} s",
            f"engine sweep (shared space):    {sweep_seconds:7.3f} s",
            f"spaces built by the engine: {spaces_built}",
            f"speedup: {naive_seconds / sweep_seconds:.1f}x",
        ],
    )
    assert spaces_built == 1
    assert sweep_seconds < naive_seconds


def test_service_batch_throughput(report):
    """4-worker assess_many() vs 1 worker on an 8-dataset batch."""
    cpus = _available_cpus()
    requests = _batch_requests()
    assert len(requests) >= 8

    start = time.perf_counter()
    serial = AssessmentEngine().assess_many(requests, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = AssessmentEngine().assess_many(requests, workers=4)
    parallel_seconds = time.perf_counter() - start

    assert all(result.ok for result in serial)
    serial_json = [
        json.dumps(assessment_to_json(result.assessment), sort_keys=True)
        for result in serial
    ]
    parallel_json = [
        json.dumps(assessment_to_json(result.assessment), sort_keys=True)
        for result in parallel
    ]
    assert serial_json == parallel_json

    lines = [
        f"batch of {len(requests)} datasets ({', '.join(BATCH_BENCHMARKS)} x 2)",
        f"available CPUs: {cpus}",
        f"1 worker:  {serial_seconds:7.3f} s "
        f"({len(requests) / serial_seconds:6.2f} assessments/s)",
        f"4 workers: {parallel_seconds:7.3f} s "
        f"({len(requests) / parallel_seconds:6.2f} assessments/s)",
        "results: byte-identical JSON across pool sizes",
    ]
    if cpus >= 2:
        lines.append(f"speedup: {serial_seconds / parallel_seconds:.2f}x")
        report("service_batch_throughput", lines)
        assert parallel_seconds < serial_seconds
    else:
        lines.append(
            "single-CPU host: speedup not asserted (pool cannot beat serial "
            "without a second core)"
        )
        report("service_batch_throughput", lines)


def test_service_fault_point_overhead(report):
    """An uninstrumented fault_point() must cost well under a microsecond.

    fault_point() sits on the cache read/write and compute hot paths; the
    no-injector fast path is one global load and a None check, so leaving
    the hooks in production code has to be effectively free.
    """
    iterations = 1_000_000
    start = time.perf_counter()
    for _ in range(iterations):
        fault_point("bench.site")
    elapsed = time.perf_counter() - start
    per_call_ns = elapsed / iterations * 1e9

    report(
        "service_fault_point_overhead",
        [
            f"{iterations:,} uninstrumented fault_point() calls: {elapsed:6.3f} s",
            f"per call: {per_call_ns:6.1f} ns (floor: < 1000 ns)",
        ],
    )
    assert per_call_ns < 1000.0


def test_service_single_flight_dedup(report):
    """N threads asking the same cold question trigger exactly one compute.

    Thread-count scaling is irrelevant here (and not asserted, per the
    single-CPU host caveat): the point is the *compute count*, which the
    single-flight path must hold at 1 no matter how many callers race.
    """
    profile = load_benchmark("retail").profile
    engine = AssessmentEngine()
    thread_count = 8
    barrier = threading.Barrier(thread_count)
    outcomes = []
    lock = threading.Lock()

    def worker():
        barrier.wait()
        outcome = engine.assess(profile, 0.01, runs=25)
        with lock:
            outcomes.append(outcome)

    start = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    computed = engine.metrics.counter("computed")
    coalesced = engine.cache.stats()["coalesced"]
    assert computed == 1
    assert len({id(outcome.assessment) for outcome in outcomes}) == 1
    report(
        "service_single_flight_dedup",
        [
            f"{thread_count} concurrent threads, same cold request (retail)",
            f"wall clock: {elapsed:7.3f} s",
            f"computes: {computed} (floor: exactly 1)",
            f"coalesced waiters: {coalesced}, "
            f"cache hits: {engine.metrics.counter('cache_hits')}",
        ],
    )


def test_service_atomic_write_overhead(report, tmp_path):
    """Disk-tier puts stay fast despite the temp-file + fsync + rename dance."""
    report_obj = assess_risk(load_benchmark("chess").profile, 0.05)
    cache = AssessmentCache(directory=tmp_path)
    writes = 200

    start = time.perf_counter()
    for index in range(writes):
        cache.put(f"fp{index:04d}", report_obj)
    elapsed = time.perf_counter() - start

    assert not list(tmp_path.glob("*.tmp"))  # every temp was promoted
    assert len(list(tmp_path.glob("*.json"))) == writes
    report(
        "service_atomic_write_overhead",
        [
            f"{writes} atomic disk-tier puts (temp file + fsync + rename)",
            f"wall clock: {elapsed:7.3f} s ({writes / elapsed:7.1f} puts/s)",
            "no orphan temp files left behind",
        ],
    )


def test_perf_engine_cold_assess(benchmark):
    """pytest-benchmark timing of one cold engine pass on retail."""
    profile = load_benchmark("retail").profile

    def cold():
        return AssessmentEngine().assess(profile, 0.01, runs=25)

    outcome = benchmark(cold)
    assert outcome.assessment.decision is not None


def test_perf_engine_warm_assess(benchmark):
    """pytest-benchmark timing of the cache-hit path on retail."""
    profile = load_benchmark("retail").profile
    engine = AssessmentEngine()
    engine.assess(profile, 0.01, runs=25)

    outcome = benchmark(engine.assess, profile, 0.01, runs=25)
    assert outcome.cached

"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper and
is driven by pytest-benchmark::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the reproduced tables reach the terminal; every
table is also persisted under ``benchmarks/results/`` regardless.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Print a reproduced table and persist it under benchmarks/results/."""

    def _report(name: str, lines: list[str]) -> None:
        text = "\n".join([f"=== {name} ==="] + lines) + "\n"
        print("\n" + text, end="")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text)

    return _report


@pytest.fixture
def rng():
    return np.random.default_rng(20050614)

"""Attack-strength study: predicted vs achieved cracks (library extension).

The O-estimate predicts the cracks of a *uniform random* consistent
mapping; a smart hacker — forced pairs plus maximum-marginal placement —
does at least as well.  This bench mounts the best-guess attack against
the MUSHROOM-scale benchmark at four knowledge levels and tabulates
prediction vs achievement, quantifying how much the recipe's number
understates a determined adversary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import evaluate_attack
from repro.beliefs import ignorant_belief, point_belief, uniform_width_belief
from repro.data import FrequencyGroups
from repro.datasets import load_benchmark
from repro.graph import space_from_frequencies


@pytest.fixture(scope="module")
def mushroom():
    profile = load_benchmark("mushroom").profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    return frequencies, delta


def test_attack_ladder(report, mushroom, benchmark):
    frequencies, delta = mushroom
    rng = np.random.default_rng(99)
    attackers = [
        ("ignorant", ignorant_belief(frequencies)),
        ("ballpark(delta_med)", uniform_width_belief(frequencies, delta)),
        ("ballpark(4x delta)", uniform_width_belief(frequencies, 4 * delta)),
        ("exact", point_belief(frequencies)),
    ]

    rows = []
    for label, belief in attackers:
        space = space_from_frequencies(belief, frequencies)
        outcome = evaluate_attack(space, n_samples=150, rng=rng)
        rows.append((label, outcome))

    benchmark.pedantic(
        lambda: evaluate_attack(
            space_from_frequencies(attackers[1][1], frequencies),
            n_samples=100,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )

    lines = [f"{'attacker':>20} {'OE (random map)':>16} {'achieved':>9} {'forced':>7}"]
    for label, outcome in rows:
        lines.append(
            f"{label:>20} {outcome.o_estimate:>16.2f} {outcome.n_cracked:>9} "
            f"{outcome.guess.n_forced:>7}"
        )
    lines.append(
        "(the smart guess turns forced pairs into certainties, so it meets "
        "or beats the random-mapping prediction)"
    )
    report("attack_ladder", lines)

    by_label = dict(rows)
    # Monotone in knowledge, and the smart exact-knowledge attack achieves
    # at least the point-valued prediction.
    assert by_label["ignorant"].n_cracked <= by_label["exact"].n_cracked
    assert (
        by_label["ballpark(delta_med)"].n_cracked
        >= 0.7 * by_label["ballpark(delta_med)"].o_estimate
    )
    exact = by_label["exact"]
    assert exact.n_cracked >= exact.guess.n_forced

"""Protection trade-off study (library extension; motivated by Lemma 3).

For the risky benchmarks (CONNECT, MUSHROOM, CHESS — the ones the recipe
refuses to disclose at tau = 0.1), search the smallest binning /
suppression intervention that brings the fully compliant interval
O-estimate within tolerance, and tabulate the risk-vs-distortion
trade-off each strategy pays.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_benchmark
from repro.protect import protect_to_tolerance

DATASETS = ["connect", "mushroom", "chess"]
TAU = 0.1


@pytest.fixture(scope="module")
def plans():
    results = {}
    for name in DATASETS:
        profile = load_benchmark(name).profile
        for strategy in ("bin", "quantile", "suppress"):
            results[name, strategy] = protect_to_tolerance(
                profile, TAU, strategy=strategy
            )
    return results


def test_protection_tradeoff_table(report, plans, benchmark):
    profile = load_benchmark("chess").profile
    benchmark(protect_to_tolerance, profile, TAU, "quantile")

    lines = [
        f"{'dataset':>10} {'strategy':>9} {'param':>6} {'OE before':>10} "
        f"{'OE after':>9} {'distortion(max/mean)':>22}"
    ]
    for name in DATASETS:
        for strategy in ("bin", "quantile", "suppress"):
            plan = plans[name, strategy]
            if strategy == "suppress":
                distortion = f"{plan.parameter} items withheld"
            else:
                release = plan.release
                distortion = f"{release.max_distortion:.5f}/{release.mean_distortion:.5f}"
            lines.append(
                f"{name.upper():>10} {strategy:>9} {plan.parameter:>6} "
                f"{plan.estimate_before:>10.2f} {plan.estimate_after:>9.2f} "
                f"{distortion:>22}"
            )
    lines.append(f"(tau = {TAU}; binning merges Lemma-3 frequency groups)")
    report("protection_tradeoff", lines)

    for (name, _), plan in plans.items():
        n = len(load_benchmark(name).profile.domain)
        assert plan.estimate_after <= TAU * n + 1e-9


def test_quantile_binning_is_cheapest_in_distortion(plans):
    """Quantile bins target group sizes directly, so they typically meet
    the tolerance with less frequency distortion than fixed-width bins."""
    for name in DATASETS:
        quantile_plan = plans[name, "quantile"]
        bin_plan = plans[name, "bin"]
        assert (
            quantile_plan.release.mean_distortion
            <= bin_plan.release.mean_distortion * 1.5
        ), name

"""Performance benchmarks (Section 5.1's complexity claims, Section 7.2).

* The O-estimate runs in O(|D| + n log n): the paper reports "a few
  seconds" on RETAIL for its 2005 hardware; this harness times the same
  computation here.
* Sampler throughput (proposals/second) and miner comparison
  (Apriori vs FP-growth) round out the substrate timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import uniform_width_belief
from repro.core import o_estimate
from repro.data import FrequencyGroups
from repro.datasets import load_benchmark, random_database
from repro.graph import space_from_frequencies
from repro.mining import apriori, fp_growth
from repro.simulation import MatchingSampler


@pytest.fixture(scope="module")
def retail_space():
    profile = load_benchmark("retail").profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    return space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)


def test_perf_oestimate_retail(benchmark, retail_space):
    """Figure 5's full pipeline on the largest domain (16,470 items)."""
    result = benchmark(o_estimate, retail_space)
    assert result.value > 0


def test_perf_space_construction_retail(benchmark):
    profile = load_benchmark("retail").profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    belief = uniform_width_belief(frequencies, delta)
    space = benchmark(space_from_frequencies, belief, frequencies)
    assert space.n == 16470


def test_perf_sampler_sweep_pumsb(benchmark):
    profile = load_benchmark("pumsb").profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    space = space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)
    sampler = MatchingSampler(space, rng=np.random.default_rng(1))
    benchmark(sampler.sweep, 1)
    assert sampler.check_consistency()


def test_perf_apriori(benchmark, rng):
    db = random_database(30, 500, density=0.25, rng=rng)
    result = benchmark(apriori, db, 0.15)
    assert result


def test_perf_fpgrowth(benchmark, rng):
    db = random_database(30, 500, density=0.25, rng=rng)
    result = benchmark(fp_growth, db, 0.15)
    assert result

"""Figure 10 — O-estimates vs average simulated estimates.

For each benchmark, build the fully compliant interval belief with the
median-gap width delta_med (step 6 of the recipe), compute the O-estimate
and run the matching-swap simulator (5 runs), and verify the paper's
headline claim: the O-estimate falls within one standard deviation of the
average simulated estimate.

The simulator here is the group-level Gibbs chain (same stationary
distribution as the paper's swap chain, far faster mixing — see
``repro.simulation.gibbs`` and the mixing ablation), so the estimates are
much tighter than the paper's: tight enough to expose the O-estimate's
genuine downward bias (2-12% depending on the dataset), which the paper's
noisier simulation absorbed within one standard deviation.  The
qualitative claim — the O-estimate tracks the simulated value closely —
is checked at a 15% relative tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import uniform_width_belief
from repro.core import o_estimate
from repro.data import FrequencyGroups
from repro.datasets import load_benchmark
from repro.graph import space_from_frequencies
from repro.simulation import simulate_expected_cracks

DATASETS = ["connect", "pumsb", "accidents", "retail", "mushroom", "chess"]

#: Samples per run, scaled down for the largest domains.
SAMPLE_BUDGET = {"retail": 50, "pumsb": 150, "accidents": 200}


def _space_for(name: str):
    profile = load_benchmark(name).profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    belief = uniform_width_belief(frequencies, delta)
    return space_from_frequencies(belief, frequencies)


@pytest.fixture(scope="module")
def figure10_rows():
    rows = {}
    rng = np.random.default_rng(710)
    for name in DATASETS:
        space = _space_for(name)
        estimate = o_estimate(space)
        simulated = simulate_expected_cracks(
            space,
            runs=5,
            samples_per_run=SAMPLE_BUDGET.get(name, 300),
            burn_in_sweeps=30,
            sweeps_per_sample=2,
            rng=rng,
            rao_blackwell=True,
            method="gibbs",
        )
        rows[name] = (space, estimate, simulated)
    return rows


def test_figure10_table(report, figure10_rows, benchmark):
    # Benchmark the O-estimate on the largest dataset (the paper notes it
    # takes "only a few seconds" even for RETAIL).
    space = figure10_rows["retail"][0]
    benchmark(o_estimate, space)

    lines = [
        f"{'Dataset':>10} {'n':>6} {'OE':>10} {'sim mean':>10} {'sim std':>9} "
        f"{'OE frac':>9} {'sim frac':>9} {'|diff|/std':>10}"
    ]
    for name in DATASETS:
        space, estimate, simulated = figure10_rows[name]
        gap = abs(estimate.value - simulated.mean) / max(simulated.std, 1e-9)
        lines.append(
            f"{name.upper():>10} {space.n:>6} {estimate.value:>10.2f} "
            f"{simulated.mean:>10.2f} {simulated.std:>9.3f} "
            f"{estimate.fraction:>9.4f} {simulated.fraction:>9.4f} {gap:>10.2f}"
        )
    lines.append(
        "(paper claims agreement within 1 std of its noisy swap-chain simulation; "
    )
    lines.append(
        " our tighter Gibbs estimates expose a 2-12% genuine OE underestimate)"
    )
    report("fig10_oe_vs_sim", lines)

    for name in DATASETS:
        space, estimate, simulated = figure10_rows[name]
        # The O-estimate is a lower bound (Delta >= 0, Section 5.2) and
        # tracks the true value within 15% on every benchmark.
        assert estimate.value <= simulated.mean + 3 * simulated.std + 0.005 * space.n, name
        assert abs(estimate.value - simulated.mean) <= 0.15 * simulated.mean, name


@pytest.mark.parametrize("name", DATASETS)
def test_oe_within_tolerance_of_simulation(figure10_rows, name):
    space, estimate, simulated = figure10_rows[name]
    # Lower-bound + 15% relative tracking (see test_figure10_table).
    assert estimate.value <= simulated.mean + 3 * simulated.std + 0.005 * space.n
    assert abs(estimate.value - simulated.mean) <= 0.15 * simulated.mean

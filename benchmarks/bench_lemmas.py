"""Section 3 — the Lemma 1-4 closed forms on the calibrated benchmarks.

Prints the point-valued expected cracks g (Lemma 3) and the expected
cracks of a "top items of interest" subset (Lemma 4) for every dataset,
validating the Lemma 1/3 values against the permanent-based direct method
on a small instance.
"""

from __future__ import annotations

import pytest

from repro.beliefs import ignorant_belief, point_belief
from repro.core import (
    expected_cracks_ignorant,
    expected_cracks_point_valued,
    expected_cracks_point_valued_subset,
)
from repro.data import FrequencyGroups
from repro.datasets import load_benchmark
from repro.graph import expected_cracks_direct, space_from_frequencies

DATASETS = ["connect", "pumsb", "accidents", "retail", "mushroom", "chess"]


def test_lemma_table(report, benchmark):
    def compute():
        rows = []
        for name in DATASETS:
            profile = load_benchmark(name).profile
            frequencies = profile.frequencies()
            groups = FrequencyGroups(frequencies)
            g = expected_cracks_point_valued(groups)
            # Owner cares about the top 10% most frequent items.
            items_sorted = sorted(frequencies, key=frequencies.get, reverse=True)
            top = items_sorted[: max(1, len(items_sorted) // 10)]
            subset = expected_cracks_point_valued_subset(groups, top)
            rows.append((name, len(frequencies), g, subset, len(top)))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [
        f"{'Dataset':>10} {'n':>6} {'Lemma1':>7} {'g (Lemma3)':>11} "
        f"{'g/n':>7} {'top-10% cracks (Lemma4)':>24}"
    ]
    for name, n, g, subset, n_top in rows:
        lines.append(
            f"{name.upper():>10} {n:>6} {expected_cracks_ignorant(n):>7.1f} "
            f"{g:>11.0f} {g / n:>7.3f} {subset:>17.2f} of {n_top}"
        )
    lines.append("(Lemma 1: ignorant hacker cracks 1 item in expectation, any n)")
    report("lemmas_point_valued", lines)

    for name, n, g, subset, n_top in rows:
        assert 1 <= g <= n
        assert 0 <= subset <= n_top


def test_lemmas_validated_by_direct_method(benchmark):
    frequencies = {i: f for i, f in enumerate([0.1, 0.1, 0.3, 0.3, 0.3, 0.7], start=1)}

    def compute():
        ignorant_space = space_from_frequencies(ignorant_belief(frequencies), frequencies)
        point_space = space_from_frequencies(point_belief(frequencies), frequencies)
        return (
            expected_cracks_direct(ignorant_space),
            expected_cracks_direct(point_space),
        )

    ignorant_value, point_value = benchmark(compute)
    assert ignorant_value == pytest.approx(expected_cracks_ignorant(6))
    assert point_value == pytest.approx(expected_cracks_point_valued(frequencies))

"""Ablations over the design choices DESIGN.md calls out.

1. Degree-1 propagation (Figure 7) on vs off in the O-estimate.
2. Interval width: median gap (the recipe's delta_med) vs mean gap —
   the paper warns the mean under-estimates the risk (Section 6.1).
3. Simulator budget: convergence of the estimate as samples grow.
4. Rao-Blackwellized vs raw crack counting: same mean, lower variance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import uniform_width_belief
from repro.core import o_estimate
from repro.data import FrequencyGroups
from repro.datasets import load_benchmark
from repro.graph import space_from_frequencies
from repro.simulation import simulate_expected_cracks

SMALL_DATASETS = ["chess", "mushroom", "connect"]


def _space_for(name: str, use_mean_gap: bool = False):
    profile = load_benchmark(name).profile
    frequencies = profile.frequencies()
    groups = FrequencyGroups(frequencies)
    delta = groups.mean_gap() if use_mean_gap else groups.median_gap()
    return space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)


def test_ablation_propagation(report, benchmark):
    def compute():
        rows = []
        for name in SMALL_DATASETS:
            space = _space_for(name)
            raw = o_estimate(space)
            propagated = o_estimate(space, propagate=True)
            rows.append((name, space.n, raw, propagated))
        return rows

    rows = benchmark(compute)
    lines = [
        f"{'Dataset':>10} {'n':>5} {'raw OE':>9} {'prop OE':>9} {'forced':>7} {'gain %':>7}"
    ]
    for name, n, raw, propagated in rows:
        gain = (propagated.value - raw.value) / raw.value * 100
        lines.append(
            f"{name.upper():>10} {n:>5} {raw.value:>9.2f} {propagated.value:>9.2f} "
            f"{propagated.n_forced:>7} {gain:>7.2f}"
        )
    lines.append("(propagation can only reveal more certainty: OE never drops)")
    report("ablation_propagation", lines)

    for _, _, raw, propagated in rows:
        assert propagated.value >= raw.value - 1e-9


def test_ablation_interval_width(report, benchmark):
    def compute():
        rows = []
        for name in SMALL_DATASETS + ["pumsb"]:
            median_estimate = o_estimate(_space_for(name, use_mean_gap=False))
            mean_estimate = o_estimate(_space_for(name, use_mean_gap=True))
            rows.append((name, median_estimate, mean_estimate))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'Dataset':>10} {'OE(delta_med)':>14} {'OE(delta_mean)':>15} {'ratio':>7}"]
    for name, median_estimate, mean_estimate in rows:
        ratio = mean_estimate.value / median_estimate.value
        lines.append(
            f"{name.upper():>10} {median_estimate.value:>14.2f} "
            f"{mean_estimate.value:>15.2f} {ratio:>7.3f}"
        )
    lines.append(
        "(mean gap > median gap, so mean-width intervals under-estimate cracks: "
        "Lemma 8 monotonicity)"
    )
    report("ablation_interval_width", lines)

    for _, median_estimate, mean_estimate in rows:
        assert mean_estimate.value <= median_estimate.value + 1e-9


def test_ablation_simulation_budget(report, benchmark):
    space = _space_for("chess")
    reference = o_estimate(space).value
    budgets = [25, 100, 400]

    def run(budget: int):
        return simulate_expected_cracks(
            space, runs=5, samples_per_run=budget, rng=np.random.default_rng(99)
        )

    results = {budget: run(budget) for budget in budgets}
    benchmark.pedantic(run, args=(25,), rounds=1, iterations=1)

    lines = [f"{'samples/run':>12} {'mean':>8} {'std':>7} {'|mean-OE|':>10}"]
    for budget in budgets:
        result = results[budget]
        lines.append(
            f"{budget:>12} {result.mean:>8.2f} {result.std:>7.3f} "
            f"{abs(result.mean - reference):>10.3f}"
        )
    lines.append(f"(reference O-estimate: {reference:.2f})")
    report("ablation_simulation_budget", lines)

    # The largest budget should land within a few std of the O-estimate.
    final = results[budgets[-1]]
    assert abs(final.mean - reference) <= max(4 * final.std, 0.05 * space.n)


def test_ablation_swap_vs_gibbs_mixing(report, benchmark):
    """Same stationary distribution, very different mixing: the paper's
    transposition chain retains heavy seed bias on PUMSB after hundreds of
    sweeps, while the group-level Gibbs chain equilibrates in a few."""
    from repro.simulation import GibbsAssignmentSampler, MatchingSampler

    profile = load_benchmark("pumsb").profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    space = space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)

    swap = MatchingSampler(space, rng=np.random.default_rng(77))
    gibbs = GibbsAssignmentSampler(space, rng=np.random.default_rng(77))
    checkpoints = [5, 20, 50]
    lines = [f"{'sweeps':>7} {'swap RB':>9} {'gibbs RB':>9}   (seeded all-cracked)"]
    swap_values, gibbs_values = [], []
    total = 0

    def advance():
        nonlocal total
        for target in checkpoints:
            swap.sweep(target - total)
            gibbs.sweep(target - total)
            total = target
            swap_values.append(swap.rao_blackwell_cracks())
            gibbs_values.append(gibbs.rao_blackwell_cracks())

    benchmark.pedantic(advance, rounds=1, iterations=1)
    reference = simulate_expected_cracks(
        space,
        runs=3,
        samples_per_run=100,
        rng=np.random.default_rng(5),
        method="gibbs",
        rao_blackwell=True,
    )
    for target, swap_value, gibbs_value in zip(checkpoints, swap_values, gibbs_values):
        lines.append(f"{target:>7} {swap_value:>9.1f} {gibbs_value:>9.1f}")
    lines.append(f"(equilibrium by long Gibbs run: {reference.mean:.1f})")
    report("ablation_swap_vs_gibbs", lines)

    # After 50 sweeps, Gibbs is near equilibrium while swap is still far.
    assert abs(gibbs_values[-1] - reference.mean) < abs(swap_values[-1] - reference.mean)


def test_ablation_rao_blackwell(report, benchmark):
    space = _space_for("mushroom")

    def run(rao: bool):
        return simulate_expected_cracks(
            space,
            runs=5,
            samples_per_run=150,
            rng=np.random.default_rng(123),
            rao_blackwell=rao,
        )

    plain = run(False)
    rao = run(True)
    benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)

    report(
        "ablation_rao_blackwell",
        [
            f"raw crack counting : mean={plain.mean:.3f} std={plain.std:.4f}",
            f"Rao-Blackwellized  : mean={rao.mean:.3f} std={rao.std:.4f}",
            "(same chain, same target mean; conditioning on the group "
            "assignment removes within-group noise)",
        ],
    )
    assert rao.mean == pytest.approx(plain.mean, abs=max(4 * plain.std, 0.5))
    assert rao.std <= plain.std * 1.5 + 1e-6

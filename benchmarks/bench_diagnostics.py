"""Sampler convergence diagnostics across benchmarks (methodology study).

R-hat between over-dispersed chains (half seeded all-cracked, half from
random matchings) and integrated autocorrelation times, for the paper's
swap chain vs the group-level Gibbs chain.  This is the quantitative
backing for the EXPERIMENTS.md §3 finding: the swap chain's seed bias
survives realistic budgets on the larger domains, while Gibbs converges
within a handful of sweeps everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.beliefs import uniform_width_belief
from repro.data import FrequencyGroups
from repro.datasets import load_benchmark
from repro.graph import space_from_frequencies
from repro.simulation import diagnose_chains

DATASETS = ["chess", "mushroom", "connect", "pumsb"]


def _space_for(name: str):
    profile = load_benchmark(name).profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    return space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)


def test_convergence_table(report, benchmark):
    rows = []
    for name in DATASETS:
        space = _space_for(name)
        for method in ("swap", "gibbs"):
            result = diagnose_chains(
                space,
                n_chains=4,
                n_samples=80,
                sweeps_per_sample=1,
                method=method,
                observable="rao_blackwell",
                rng=np.random.default_rng(44),
            )
            rows.append((name, method, result))

    benchmark.pedantic(
        diagnose_chains,
        args=(_space_for("chess"),),
        kwargs={
            "n_chains": 2,
            "n_samples": 40,
            "method": "gibbs",
            "rng": np.random.default_rng(0),
        },
        rounds=1,
        iterations=1,
    )

    lines = [
        f"{'dataset':>10} {'method':>7} {'R-hat':>8} {'tau_int (mean)':>15} "
        f"{'eff. samples':>13}"
    ]
    for name, method, result in rows:
        mean_time = float(np.mean(result.autocorrelation_times))
        lines.append(
            f"{name.upper():>10} {method:>7} {result.r_hat:>8.3f} "
            f"{mean_time:>15.1f} {result.effective_samples:>13.0f}"
        )
    lines.append(
        "(4 chains x 80 sweeps, half seeded from the all-cracked matching; "
        "R-hat near 1 = converged)"
    )
    report("sampler_convergence", lines)

    by_key = {(name, method): result for name, method, result in rows}
    # Gibbs converges everywhere at this budget.
    for name in DATASETS:
        assert by_key[name, "gibbs"].converged(r_hat_threshold=1.25), name
    # The swap chain visibly lags on the largest domain tested here.
    assert by_key["pumsb", "swap"].r_hat > by_key["pumsb", "gibbs"].r_hat

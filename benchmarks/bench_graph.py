"""Graph-engine benchmarks: Ryser vs block decomposition vs interval DP.

Measures the structure-exploiting exact engine against the historical
Ryser-only path across domain sizes, the attacker-workbench solver as an
``exact_strategy(preprocess=True)`` front end (forced pairs peeled off,
forbidden edges deleted, blocks re-split), plus the vectorized Gibbs
sweep against the legacy per-item Python loop, and writes the results as
machine-readable JSON (``BENCH_graph.json`` at the repo root) so future
changes have a perf trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/bench_graph.py           # full run, writes JSON
    PYTHONPATH=src python benchmarks/bench_graph.py --smoke   # tiny sizes, asserts only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.beliefs import interval_belief
from repro.graph import (
    count_matchings_exact,
    crack_marginals_exact,
    exact_strategy,
    space_from_frequencies,
)
from repro.graph.permanent import ryser_int_python as _ryser
from repro.simulation.gibbs import GibbsAssignmentSampler

FULL_SIZES = (12, 18, 50, 200, 1000)
SMOKE_SIZES = (6, 8, 10, 12)

#: Whole-matrix Ryser gets unbearably slow (minutes) past this size.
RYSER_TIMING_CAP = 18
#: Exact E[X] via Ryser minors costs n+1 permanents; cap lower still.
RYSER_MINORS_CAP = 12


def interval_instance(n: int, seed: int, group_size: int = 5, max_halfwidth: int = 2):
    """A compliant interval-belief space over ``n`` items.

    Frequencies fall into ``n // group_size`` packed groups; each item's
    belief interval spans up to ``max_halfwidth`` adjacent groups on each
    side — the ``delta_med`` regime the recipe produces.
    """
    rng = np.random.default_rng(seed)
    n_groups = max(n // group_size, 1)
    step = 0.9 / n_groups
    frequencies = {i: round(0.05 + step * (i % n_groups), 9) for i in range(n)}
    intervals = {}
    for i, f in frequencies.items():
        w = int(rng.integers(0, max_halfwidth + 1))
        intervals[i] = (max(0.0, f - step * w), min(1.0, f + step * w))
    return space_from_frequencies(interval_belief(intervals), frequencies)


def explicit_block_instance(n: int, block_size: int, seed: int):
    """A dense explicit space made of independent ``block_size`` blocks.

    Plain Ryser is infeasible past n=22; block decomposition keeps every
    component small, so the exact engine stays polynomial in the number
    of blocks.
    """
    from repro.graph import ExplicitMappingSpace

    rng = np.random.default_rng(seed)
    adjacency: list[list[int]] = []
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        for i in range(start, stop):
            others = [j for j in range(start, stop) if j != i and rng.random() < 0.5]
            adjacency.append(sorted({i, *others}))
    return ExplicitMappingSpace(
        items=tuple(range(n)),
        anonymized=tuple(f"{i}'" for i in range(n)),
        adjacency=adjacency,
        true_partner_of=list(range(n)),
    )


def bench_block_ryser(sizes, check: bool) -> list[dict]:
    rows = []
    for n in sizes:
        space = explicit_block_instance(n, block_size=10, seed=n)
        plan, plan_s = time_call(exact_strategy, space)
        count, block_s = time_call(count_matchings_exact, space)
        marginals, marg_s = time_call(crack_marginals_exact, space)
        row = {
            "n": n,
            "strategy": plan.strategy,
            "n_blocks": plan.n_blocks,
            "largest_block": plan.largest_block,
            "block_count_s": block_s,
            "block_expected_s": marg_s,
            "expected_cracks": float(marginals.sum()),
        }
        if n <= RYSER_TIMING_CAP:
            ryser_count, ryser_s = time_call(_ryser, space.adjacency_matrix())
            row["ryser_count_s"] = ryser_s
            row["count_agrees_with_ryser"] = float(count) == ryser_count
            if check:
                assert float(count) == ryser_count, (
                    f"n={n}: block-Ryser count {count} != Ryser {ryser_count}"
                )
        rows.append(row)
        print(
            f"  n={n:5d}  {plan.strategy:18s} blocks={plan.n_blocks:3d} "
            f"E[X]={row['expected_cracks']:9.4f}  block={marg_s:8.4f}s"
            + (f"  ryser={row['ryser_count_s']:8.4f}s" if "ryser_count_s" in row else "")
        )
    return rows


def staircase_instance(n: int):
    """Figure 6(a) scaled to ``n`` items: adjacency row ``i`` is ``0..i``.

    Degree-1 propagation alone cracks every item, so the preprocessed
    plan needs no permanent at all (``largest_block == 0``) while the
    plain plan sees one connected component of size ``n``.
    """
    from repro.graph import ExplicitMappingSpace

    return ExplicitMappingSpace(
        items=tuple(range(n)),
        anonymized=tuple(f"{i}'" for i in range(n)),
        adjacency=[list(range(i + 1)) for i in range(n)],
        true_partner_of=list(range(n)),
    )


def chained_pairs_instance(n: int):
    """Figure 6(b) tiled into one connected component of size ``n``.

    Consecutive item pairs ``{2i, 2i+1}`` share the candidate columns
    ``{2i, 2i+1}``; every even item past the first also carries a bridge
    edge into the previous pair. Each pair is a tight Hall set, so the
    solver deletes every bridge and the component shatters into blocks
    of two — the plain plan keeps a single size-``n`` block that Ryser
    cannot touch beyond n=22.
    """
    from repro.graph import ExplicitMappingSpace

    assert n % 2 == 0
    adjacency = []
    for i in range(n):
        if i % 2 == 0:
            adjacency.append([i - 1, i, i + 1] if i > 0 else [i, i + 1])
        else:
            adjacency.append([i - 1, i])
    return ExplicitMappingSpace(
        items=tuple(range(n)),
        anonymized=tuple(f"{i}'" for i in range(n)),
        adjacency=adjacency,
        true_partner_of=list(range(n)),
    )


def bench_solver_preprocess(sizes, check: bool) -> list[dict]:
    instances = [
        ("staircase", staircase_instance),
        ("chained-pairs", chained_pairs_instance),
    ]
    rows = []
    for name, build in instances:
        for n in sizes:
            space = build(n)
            plain, plain_s = time_call(exact_strategy, space)
            pre, pre_s = time_call(exact_strategy, space, preprocess=True)
            row = {
                "instance": name,
                "n": n,
                "plain_strategy": plain.strategy,
                "plain_largest_block": plain.largest_block,
                "plain_plan_s": plain_s,
                "pre_strategy": pre.strategy,
                "pre_largest_block": pre.largest_block,
                "pre_plan_s": pre_s,
                "forced_pairs": pre.forced_pairs,
                "forbidden_edges": pre.forbidden_edges,
                "largest_block_shrank": pre.largest_block < plain.largest_block,
            }
            _, pre_count_s = time_call(count_matchings_exact, space, preprocess=True)
            row["pre_count_s"] = pre_count_s
            if n <= RYSER_TIMING_CAP:
                plain_count, plain_count_s = time_call(count_matchings_exact, space)
                pre_count = count_matchings_exact(space, preprocess=True)
                row["plain_count_s"] = plain_count_s
                row["count_agrees"] = pre_count == plain_count
                if check:
                    assert pre_count == plain_count, (
                        f"{name} n={n}: preprocessed count {pre_count} != {plain_count}"
                    )
            if check:
                assert pre.preprocessed and pre.feasible and pre.matchable
                assert pre.largest_block < plain.largest_block, (
                    f"{name} n={n}: largest block {pre.largest_block} did not "
                    f"shrink below {plain.largest_block}"
                )
            rows.append(row)
            print(
                f"  {name:14s} n={n:5d}  largest block {plain.largest_block:4d} -> "
                f"{pre.largest_block:3d}  forced={pre.forced_pairs:4d} "
                f"forbidden={pre.forbidden_edges:5d}  count={pre_count_s:8.4f}s"
            )
    return rows


def time_call(fn, *args, **kwargs):
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start


def ryser_expected_cracks(space) -> float:
    """The historical direct method: one Ryser minor per item."""
    matrix = space.adjacency_matrix()
    total = _ryser(matrix)
    expected = 0.0
    for i in range(space.n):
        j = space.true_partner(i)
        if matrix[j, i] == 0.0:
            continue
        minor = np.delete(np.delete(matrix, j, axis=0), i, axis=1)
        expected += _ryser(minor) / total
    return expected


class LegacyGibbs(GibbsAssignmentSampler):
    """The pre-vectorization sweep: Python lists and per-item loops."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._members = [[] for _ in range(self.k)]
        for i in range(self.n):
            self._members[int(self._assign[i])].append(i)

    def _resample_boundary(self, g: int) -> None:
        h = g + 1
        g_lo, g_hi = self._g_lo, self._g_hi
        flexible = [i for i in self._members[g] if g_lo[i] <= g and g_hi[i] > h] + [
            i for i in self._members[h] if g_lo[i] <= g and g_hi[i] > h
        ]
        if len(flexible) < 2:
            return
        quota_g = sum(1 for i in self._members[g] if g_lo[i] <= g and g_hi[i] > h)
        order = self.rng.permutation(len(flexible))
        keep_g = {flexible[int(j)] for j in order[:quota_g]}
        self._members[g] = [
            i for i in self._members[g] if not (g_lo[i] <= g and g_hi[i] > h)
        ]
        self._members[h] = [
            i for i in self._members[h] if not (g_lo[i] <= g and g_hi[i] > h)
        ]
        for i in flexible:
            target = g if i in keep_g else h
            self._members[target].append(i)
            self._assign[i] = target


def bench_exact_engine(sizes, check: bool) -> list[dict]:
    rows = []
    for n in sizes:
        space = interval_instance(n, seed=n)
        plan, plan_s = time_call(exact_strategy, space)
        count, dp_count_s = time_call(count_matchings_exact, space)
        marginals, dp_marginals_s = time_call(crack_marginals_exact, space)
        expected = float(marginals.sum())
        row = {
            "n": n,
            "strategy": plan.strategy,
            "n_blocks": plan.n_blocks,
            "largest_block": plan.largest_block,
            "cost_hint": plan.cost_hint,
            "plan_s": plan_s,
            "interval_dp_count_s": dp_count_s,
            "interval_dp_expected_s": dp_marginals_s,
            "expected_cracks": expected,
            "matchings_log10": None if count <= 0 else len(str(count)) - 1,
        }
        if n <= RYSER_TIMING_CAP:
            ryser_count, ryser_s = time_call(_ryser, space.adjacency_matrix())
            # Ryser's 2^n signed float accumulation loses ~1e-9 relative
            # accuracy past n=12; bit-identity is only claimed below that.
            if n <= RYSER_MINORS_CAP:
                agrees = float(count) == ryser_count
            else:
                agrees = abs(float(count) - ryser_count) <= 1e-6 * ryser_count
            row["ryser_count_s"] = ryser_s
            row["count_agrees_with_ryser"] = agrees
            if check:
                assert agrees, (
                    f"n={n}: interval-DP count {count} != Ryser {ryser_count}"
                )
        if n <= RYSER_MINORS_CAP:
            ryser_expected, ryser_exp_s = time_call(ryser_expected_cracks, space)
            row["ryser_expected_s"] = ryser_exp_s
            row["expected_agrees_with_ryser"] = abs(expected - ryser_expected) < 1e-9
            if check:
                assert abs(expected - ryser_expected) < 1e-9, (
                    f"n={n}: DP E[X] {expected} != Ryser {ryser_expected}"
                )
        rows.append(row)
        print(
            f"  n={n:5d}  {plan.strategy:18s} blocks={plan.n_blocks:3d} "
            f"E[X]={expected:9.4f}  dp={dp_marginals_s:8.4f}s"
            + (f"  ryser={row['ryser_expected_s']:8.4f}s" if "ryser_expected_s" in row else "")
        )
    return rows


def legacy_block_expected(space) -> float:
    """The pre-batching explicit-block path: one pure-Python Ryser walk
    per block total and per item minor (what ``crack_marginals_exact``
    did before the vectorized kernels)."""
    from repro.graph.blocks import decompose
    from repro.graph.exact import _block_adjacency

    expected = 0.0
    for block in decompose(space).blocks:
        matrix = _block_adjacency(space, block)
        total = _ryser(matrix)
        anon_local = {j: r for r, j in enumerate(block.anon_indices)}
        for c, i in enumerate(block.item_indices):
            j = space.true_partner(i)
            row = anon_local.get(j)
            if row is None or matrix[row, c] == 0:
                continue
            minor = np.delete(np.delete(matrix, row, axis=0), c, axis=1)
            expected += _ryser(minor) / total
    return expected


def bench_kernels(smoke: bool, check: bool) -> dict:
    """Before/after trajectory for the vectorized exact kernels.

    Three headline rows: chunked numpy Ryser vs the pure-Python walk on
    single matrices, the batched block engine vs the per-block loop on
    the n=200 explicit workload, and a 20-tolerance assessment sweep
    with and without the DP/engine memo layer.
    """
    from repro.data.database import FrequencyProfile
    from repro.graph.intervaldp import clear_dp_memo
    from repro.graph.kernels import ryser_int_chunked
    from repro.io import assessment_to_json
    from repro.service.engine import AssessmentEngine

    rng = np.random.default_rng(7)
    chunked_rows = []
    for n in (8, 10, 12) if smoke else (12, 14, 16, 18):
        matrix = rng.integers(0, 2, size=(n, n))
        pure, pure_s = time_call(_ryser, matrix)
        vec, vec_s = time_call(ryser_int_chunked, matrix)
        if check:
            assert pure == vec, f"n={n}: chunked Ryser {vec} != pure {pure}"
        chunked_rows.append(
            {
                "n": n,
                "pure_python_s": pure_s,
                "chunked_s": vec_s,
                "speedup": pure_s / vec_s if vec_s > 0 else None,
            }
        )
        print(
            f"  chunked-ryser n={n}: pure {pure_s:.4f}s, chunked {vec_s:.4f}s "
            f"({chunked_rows[-1]['speedup']:.1f}x)"
        )

    n_block = 50 if smoke else 200
    space = explicit_block_instance(n_block, block_size=10, seed=n_block)
    legacy_expected, legacy_s = time_call(legacy_block_expected, space)
    marginals, batched_s = time_call(crack_marginals_exact, space)
    batched_expected = float(marginals.sum())
    if check:
        assert abs(legacy_expected - batched_expected) < 1e-9, (
            f"batched block marginals {batched_expected} != legacy {legacy_expected}"
        )
    block_row = {
        "n": n_block,
        "legacy_expected_s": legacy_s,
        "batched_expected_s": batched_s,
        "speedup": legacy_s / batched_s if batched_s > 0 else None,
        "expected_cracks": batched_expected,
    }
    print(
        f"  block-ryser n={n_block}: legacy {legacy_s:.4f}s, batched "
        f"{batched_s:.4f}s ({block_row['speedup']:.1f}x)"
    )

    n_sweep, n_groups = (80, 16) if smoke else (200, 40)
    counts = {f"item{i}": 10 + (i % n_groups) * 20 for i in range(n_sweep)}
    profile = FrequencyProfile(counts, 1000)
    tolerances = [round(0.01 + 0.005 * t, 6) for t in range(5 if smoke else 20)]

    def run_sweep(reuse: bool) -> tuple[list[dict], float]:
        engine = AssessmentEngine(reuse_exact_intermediates=reuse)
        clear_dp_memo()
        start = time.perf_counter()
        outcomes = []
        for tolerance in tolerances:
            if not reuse:
                # Emulate the pre-memo engine: every tolerance re-solves
                # the DP from scratch.
                clear_dp_memo()
            outcomes.append(engine.assess(profile, tolerance, runs=3, seed=0))
        elapsed = time.perf_counter() - start
        return [assessment_to_json(o.assessment) for o in outcomes], elapsed

    baseline_results, baseline_s = run_sweep(reuse=False)
    memo_results, memo_s = run_sweep(reuse=True)
    if check:
        assert memo_results == baseline_results, (
            "sweep results changed under the DP/engine memo"
        )
    sweep_row = {
        "n": n_sweep,
        "tolerances": len(tolerances),
        "baseline_s": baseline_s,
        "memo_s": memo_s,
        "speedup": baseline_s / memo_s if memo_s > 0 else None,
    }
    print(
        f"  sweep n={n_sweep} x{len(tolerances)} tolerances: baseline "
        f"{baseline_s:.4f}s, memo {memo_s:.4f}s ({sweep_row['speedup']:.1f}x)"
    )
    return {
        "chunked_ryser": chunked_rows,
        "block_ryser_batched": block_row,
        "sweep_reuse": sweep_row,
    }


def bench_gibbs(n: int, sweeps: int) -> dict:
    # Few wide groups put ~n/20 flexible items on every boundary — the
    # regime where the vectorized sweep pays off over the Python loop.
    space = interval_instance(n, seed=n, group_size=max(n // 20, 2), max_halfwidth=1)
    legacy = LegacyGibbs(space, rng=np.random.default_rng(1))
    _, legacy_s = time_call(legacy.sweep, sweeps)
    vectorized = GibbsAssignmentSampler(space, rng=np.random.default_rng(1))
    _, vector_s = time_call(vectorized.sweep, sweeps)
    assert vectorized.check_consistency(), "vectorized sweep broke feasibility"
    result = {
        "n": n,
        "sweeps": sweeps,
        "legacy_s": legacy_s,
        "vectorized_s": vector_s,
        "speedup": legacy_s / vector_s if vector_s > 0 else None,
    }
    print(
        f"  gibbs n={n}: legacy {legacy_s:.4f}s, vectorized {vector_s:.4f}s "
        f"({result['speedup']:.1f}x)"
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, assert strategy agreement, write nothing",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_graph.json"),
        help="where to write the JSON report (full mode only)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    print(f"interval-DP engine ({'smoke' if args.smoke else 'full'}):")
    engine_rows = bench_exact_engine(sizes, check=True)
    print("block-Ryser engine:")
    block_rows = bench_block_ryser(
        (10, 12) if args.smoke else (12, 50, 200), check=True
    )
    print("solver preprocessing (attacker workbench front end):")
    preprocess_rows = bench_solver_preprocess(
        (6, 10) if args.smoke else (12, 50, 200), check=True
    )
    gibbs = bench_gibbs(n=200 if args.smoke else 1000, sweeps=5 if args.smoke else 20)
    print("vectorized kernels and sweep memo:")
    kernels = bench_kernels(smoke=args.smoke, check=True)

    if args.smoke:
        committed = Path(args.output)
        if committed.exists():
            snapshot = json.loads(committed.read_text())
            assert "kernels" in snapshot, (
                f"{committed} lacks the 'kernels' section — regenerate with a "
                "full benchmark run"
            )
            print(f"committed {committed.name} has the kernels section")
        print("smoke OK: all strategies agree")
        return 0

    # Acceptance floors for the recorded trajectory: the batched block
    # engine and the sweep memo must beat the legacy paths decisively.
    assert kernels["block_ryser_batched"]["speedup"] >= 2.0, kernels
    assert kernels["sweep_reuse"]["speedup"] >= 3.0, kernels

    report = {
        "benchmark": "bench_graph",
        "schema": 1,
        "interval_dp": engine_rows,
        "block_ryser": block_rows,
        "solver_preprocess": preprocess_rows,
        "gibbs_sweep": gibbs,
        "kernels": kernels,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Powerset-belief refinement study (paper, Section 8.2).

How much sharper does the attack get when the hacker also holds pairwise
co-occurrence knowledge?  On a Quest-style correlated database, compare
the item-level O-estimate against the pairwise-refined one as the number
of known pairs grows — quantifying the paper's closing observation that
itemset-level information defeats camouflage that item frequencies alone
cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.anonymize import anonymize
from repro.beliefs import Interval, uniform_width_belief
from repro.core import o_estimate
from repro.datasets import QuestParameters, quest_database
from repro.extensions import PairBelief, refine_with_pair_beliefs
from repro.graph import space_from_anonymized
from repro.mining import eclat


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(88)
    db = quest_database(
        QuestParameters(
            n_items=40,
            n_transactions=600,
            avg_transaction_size=6,
            avg_pattern_size=3,
            n_patterns=25,
        ),
        rng=rng,
    )
    released = anonymize(db, rng=rng)
    # True pair supports of the most frequent pairs (what a competitor in
    # the same market would know best).
    pairs = [
        fi for fi in eclat(db, min_support=0.02, max_size=2) if len(fi.items) == 2
    ]
    pairs.sort(key=lambda fi: -fi.support)
    return db, released, pairs


def test_pair_knowledge_sharpens_attack(report, workload, benchmark):
    db, released, pairs = workload
    # Ball-park item knowledge (wide intervals leave plenty of
    # camouflage); ball-park pair knowledge then breaks it.
    item_belief = uniform_width_belief(db.frequencies(), 0.08)
    baseline = o_estimate(space_from_anonymized(item_belief, released))

    budgets = [0, 5, 15, 40, len(pairs)]
    lines = [f"{'#known pairs':>13} {'OE':>8} {'fraction':>9}"]
    values = []
    for budget in budgets:
        if budget == 0:
            estimate = baseline
        else:
            pair_belief = PairBelief(
                {fi.items: Interval.around(fi.support, 0.01) for fi in pairs[:budget]}
            )
            space = refine_with_pair_beliefs(released, item_belief, pair_belief)
            estimate = o_estimate(space)
        values.append(estimate.value)
        lines.append(f"{budget:>13} {estimate.value:>8.2f} {estimate.fraction:>9.3f}")
    lines.append(
        "(ball-park item intervals of width 0.16; each known pair support "
        "prunes the consistent-mapping graph by arc consistency)"
    )
    report("powerset_pair_refinement", lines)

    benchmark.pedantic(
        lambda: refine_with_pair_beliefs(
            released,
            item_belief,
            PairBelief(
                {fi.items: Interval.around(fi.support, 0.01) for fi in pairs[:15]}
            ),
        ),
        rounds=1,
        iterations=1,
    )

    # Pair knowledge can only sharpen the attack, and with the full pair
    # list it must sharpen it strictly (the workload has camouflage
    # groups that pair supports break).
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert values[-1] > values[0]

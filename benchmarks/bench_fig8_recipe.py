"""Figure 8 end-to-end — the Assess-Risk recipe on every benchmark.

Runs the full recipe at the paper's tolerance tau = 0.1 and prints the
per-dataset decision path (g, delta_med, interval O-estimate, alpha_max),
checking the Section 7.3 read-offs: RETAIL is a clear disclose, CONNECT's
alpha_max is small, PUMSB's is the largest among the alpha-bound
datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_benchmark
from repro.recipe import Decision, assess_risk

DATASETS = ["connect", "pumsb", "accidents", "retail", "mushroom", "chess"]
TAU = 0.1


@pytest.fixture(scope="module")
def reports():
    results = {}
    for name in DATASETS:
        profile = load_benchmark(name).profile
        results[name] = assess_risk(
            profile, TAU, runs=5, rng=np.random.default_rng(8)
        )
    return results


def test_recipe_table(report, reports, benchmark):
    profile = load_benchmark("pumsb").profile
    benchmark(assess_risk, profile, TAU, None, 5, np.random.default_rng(0))

    lines = [
        f"{'Dataset':>10} {'n':>6} {'g':>5} {'g/n':>7} {'delta_med':>11} "
        f"{'OE frac':>8} {'alpha_max':>10}  decision"
    ]
    for name in DATASETS:
        result = reports[name]
        oe_fraction = (
            f"{result.interval_estimate.fraction:8.4f}"
            if result.interval_estimate
            else "       -"
        )
        alpha = f"{result.alpha_max:10.3f}" if result.alpha_max is not None else "         -"
        delta = f"{result.delta:11.3g}" if result.delta is not None else "          -"
        lines.append(
            f"{name.upper():>10} {result.n_items:>6} {result.g:>5} "
            f"{result.g / result.n_items:>7.3f} {delta} {oe_fraction} {alpha}  "
            f"{result.decision.name}"
        )
    lines.append(f"(tau = {TAU}; paper Section 7.3)")
    report("fig8_recipe", lines)

    # Section 7.3 conclusions.
    assert reports["retail"].disclose  # "a clear decision to release"
    assert reports["connect"].decision is Decision.ALPHA_BOUND
    assert reports["connect"].alpha_max < 0.3  # paper: ~0.2
    assert reports["pumsb"].decision is Decision.ALPHA_BOUND
    assert reports["pumsb"].alpha_max > reports["connect"].alpha_max  # paper: ~0.7
    assert reports["accidents"].alpha_max > reports["connect"].alpha_max

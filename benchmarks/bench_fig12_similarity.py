"""Figure 12 — degrees of compliancy from similar data.

Runs Similarity-by-Sampling (Figure 13) on ACCIDENTS and RETAIL and
checks the paper's qualitative shapes:

* ACCIDENTS ("normal" dataset): compliancy rises with sample size;
* RETAIL (abnormally sparse): compliancy starts high on tiny samples,
  *drops* until about a 50% sample as frequency groups separate and the
  sampled median gap narrows, then recovers;
* with the sampled *mean* gap as the width, compliancy is uniformly and
  misleadingly high (paper: ~0.99).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_benchmark
from repro.recipe import similarity_by_sampling

FRACTIONS = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]


@pytest.fixture(scope="module")
def curves():
    results = {}
    for name in ("accidents", "retail"):
        profile = load_benchmark(name).profile
        rng = np.random.default_rng(12)
        results[name] = similarity_by_sampling(
            profile, FRACTIONS, n_samples=10, rng=rng
        )
    return results


def test_figure12_curves(report, curves, benchmark):
    profile = load_benchmark("accidents").profile
    benchmark.pedantic(
        similarity_by_sampling,
        args=(profile, [0.1]),
        kwargs={"n_samples": 3, "rng": np.random.default_rng(0)},
        rounds=1,
        iterations=1,
    )

    lines = [f"{'sample %':>9} {'ACCIDENTS':>12} {'RETAIL':>10}"]
    for index, fraction in enumerate(FRACTIONS):
        acc = curves["accidents"][index]
        ret = curves["retail"][index]
        lines.append(
            f"{fraction:>8.0%} {acc.alpha_mean:>8.3f}+/-{acc.alpha_std:<5.3f}"
            f" {ret.alpha_mean:>6.3f}+/-{ret.alpha_std:<5.3f}"
        )
    lines.append("(alpha = degree of compliancy of sample-derived belief functions)")
    report("fig12_similarity_by_sampling", lines)

    accidents = [p.alpha_mean for p in curves["accidents"]]
    retail = [p.alpha_mean for p in curves["retail"]]

    # ACCIDENTS: increasing trend end-to-end.
    assert accidents[-1] > accidents[0]
    # RETAIL: the dip-then-recover signature with the minimum near 50%.
    minimum_index = int(np.argmin(retail))
    assert 0 < minimum_index < len(FRACTIONS) - 1
    assert retail[0] > retail[minimum_index]
    assert retail[-1] > retail[minimum_index]


def test_mean_gap_width_is_misleading(report, benchmark):
    profile = load_benchmark("retail").profile
    rng = np.random.default_rng(13)

    points = benchmark.pedantic(
        similarity_by_sampling,
        args=(profile, [0.1, 0.5, 0.9]),
        kwargs={"n_samples": 5, "rng": rng, "use_mean_gap": True},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'sample %':>9} {'alpha (mean-gap width)':>24}"]
    for point in points:
        lines.append(f"{point.fraction:>8.0%} {point.alpha_mean:>24.3f}")
    lines.append("(paper: ~0.99 uniformly; using the average gap is misleading)")
    report("fig12_mean_gap_variant", lines)

    assert all(point.alpha_mean > 0.8 for point in points)

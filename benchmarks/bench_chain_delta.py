"""Section 5.2 — the chain Delta error table and the Figure 4(a) example.

Regenerates the paper's table of O-estimate percentage errors for chains
of length 3 with group sizes (20, 30, 20), plus the worked chain example
(E[X] = 74/45, OE = 197/120), and cross-validates the closed forms
against the exact permanent-based direct method on materialized chains.

OCR note: rows 2-4 of the printed table list e_1 = 15, which violates the
partition constraint e_1+e_2+e_3+s_1+s_2 = 70; e_1 = 5 restores it and
reproduces the printed percentage errors exactly, so that is what we use.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ChainSpec,
    chain_expected_cracks,
    chain_o_estimate,
    chain_percentage_error,
    space_from_chain,
)
from repro.graph import expected_cracks_direct

TABLE_ROWS = [
    ((10, 10, 10), (20, 20), 1.54),
    ((5, 10, 10), (25, 20), 4.8),
    ((5, 10, 5), (25, 25), 8.3),
    ((5, 6, 5), (27, 27), 5.76),
    ((10, 20, 10), (15, 15), 7.23),
]


def test_section52_delta_table(report, benchmark):
    def compute():
        rows = []
        for e, s, paper_error in TABLE_ROWS:
            spec = ChainSpec((20, 30, 20), e, s)
            rows.append(
                (e, s, chain_expected_cracks(spec), chain_o_estimate(spec),
                 chain_percentage_error(spec), paper_error)
            )
        return rows

    rows = benchmark(compute)

    lines = [
        f"{'e1':>4} {'e2':>4} {'e3':>4} {'s1':>4} {'s2':>4} "
        f"{'exact':>8} {'OE':>8} {'err %':>7} {'paper %':>8}"
    ]
    for (e, s, exact, estimate, error, paper_error) in rows:
        lines.append(
            f"{e[0]:>4} {e[1]:>4} {e[2]:>4} {s[0]:>4} {s[1]:>4} "
            f"{exact:>8.4f} {estimate:>8.4f} {error:>7.2f} {paper_error:>8.2f}"
        )
    lines.append("(n = (20, 30, 20); rows 2-4 use e1=5, see module docstring)")
    report("section52_chain_delta", lines)

    for (_, _, _, _, error, paper_error) in rows:
        assert error == pytest.approx(paper_error, abs=0.06)


def test_figure4a_example(report, benchmark):
    spec = ChainSpec((5, 3), (3, 2), (3,))

    def compute():
        return (
            chain_expected_cracks(spec),
            chain_o_estimate(spec),
            expected_cracks_direct(space_from_chain(spec)),
        )

    exact, estimate, direct = benchmark(compute)
    report(
        "figure4a_chain_example",
        [
            f"exact formula  E[X] = {exact:.6f} (paper: 74/45 = {74 / 45:.6f})",
            f"O-estimate     OE   = {estimate:.6f} (paper: 197/120 = {197 / 120:.6f})",
            f"direct method  E[X] = {direct:.6f} (permanent-based, Section 4.1)",
        ],
    )
    assert exact == pytest.approx(74 / 45)
    assert estimate == pytest.approx(197 / 120)
    assert direct == pytest.approx(exact)

"""Figure 11 — varying the degree of compliancy.

Sweeps the degree of compliancy alpha over [0, 1] for the four datasets
the paper plots (RETAIL, PUMSB, ACCIDENTS, CONNECT), printing the
O-estimate as a fraction of the domain together with the tau = 0.1
read-off alpha_max, and checks the paper's qualitative conclusions:

* RETAIL stays below 0.02 even at full compliancy — a clear disclose;
* CONNECT crosses tau = 0.1 at a small alpha (paper: ~0.2) — the owner
  "may want to think twice";
* PUMSB and ACCIDENTS sit in between, PUMSB crossing at a larger alpha
  than CONNECT.

Note (documented in EXPERIMENTS.md): with compliant subsets drawn
uniformly at random — the construction Section 6.2 describes — the
expected curve is exactly linear in alpha, so the paper's super-linear
curve shapes for PUMSB/ACCIDENTS are not reproduced, only the ordering
and the crossover magnitudes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import uniform_width_belief
from repro.core import alpha_curve, alpha_max, o_estimate
from repro.data import FrequencyGroups
from repro.datasets import load_benchmark
from repro.graph import space_from_frequencies
from repro.simulation import simulate_expected_cracks

DATASETS = ["retail", "pumsb", "accidents", "connect"]
TAU = 0.1
ALPHAS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def _space_for(name: str):
    profile = load_benchmark(name).profile
    frequencies = profile.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    return space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)


@pytest.fixture(scope="module")
def sweeps():
    results = {}
    for name in DATASETS:
        space = _space_for(name)
        rng = np.random.default_rng(11)
        curve = alpha_curve(space, ALPHAS, runs=5, rng=rng)
        best = alpha_max(space, TAU, runs=5, rng=np.random.default_rng(11))
        results[name] = (space, curve, best)
    return results


def test_figure11_curves(report, sweeps, benchmark):
    space = sweeps["pumsb"][0]
    benchmark(alpha_curve, space, ALPHAS, 5, np.random.default_rng(0))

    header = f"{'Dataset':>10} " + " ".join(f"a={a:<4}" for a in ALPHAS) + f"  {'alpha_max(tau=0.1)':>18}"
    lines = [header]
    for name in DATASETS:
        space, curve, best = sweeps[name]
        cells = " ".join(f"{fraction:5.3f}" for fraction in curve.fractions)
        lines.append(f"{name.upper():>10} {cells}  {best:>18.3f}")
    lines.append("(cells: O-estimate as fraction of domain; paper Figure 11)")
    report("fig11_alpha_sweep", lines)

    _, retail_curve, _ = sweeps["retail"]
    assert max(retail_curve.fractions) < 0.02  # paper: below 0.02 even at alpha=1

    connect_best = sweeps["connect"][2]
    pumsb_best = sweeps["pumsb"][2]
    accidents_best = sweeps["accidents"][2]
    assert connect_best < 0.3  # paper: ~0.2, "think twice"
    assert pumsb_best > connect_best
    assert accidents_best > connect_best


def test_simulation_tracks_alpha_curve_connect(report, benchmark):
    """Figure 11's second claim: simulated estimates stay close to the
    O-estimates for all degrees of compliancy (run on CONNECT)."""
    space = _space_for("connect")
    rng = np.random.default_rng(23)
    lines = [f"{'alpha':>6} {'OE':>8} {'sim':>8} {'std':>7}"]

    def one_alpha(alpha: float):
        n_compliant = round(alpha * space.n)
        order = rng.permutation(space.n)[:n_compliant]
        estimate = o_estimate(space, compliant_indices=order)
        # Simulate with the same compliant subset: non-compliant items are
        # modelled as never-cracked by scoring only compliant positions.
        simulated = simulate_expected_cracks(
            space, runs=3, samples_per_run=150, rng=rng, rao_blackwell=True
        )
        # Scale the fully compliant simulation by the compliant fraction —
        # valid because crack indicators are exchangeable across the
        # uniformly random compliant subset.
        scaled_mean = simulated.mean * alpha
        scaled_std = simulated.std * alpha
        return estimate.value, scaled_mean, scaled_std

    rows = benchmark.pedantic(
        lambda: [one_alpha(a) for a in (0.25, 0.5, 0.75, 1.0)], rounds=1, iterations=1
    )
    for alpha, (oe, sim, std) in zip((0.25, 0.5, 0.75, 1.0), rows):
        lines.append(f"{alpha:>6.2f} {oe:>8.2f} {sim:>8.2f} {std:>7.3f}")
        assert abs(oe - sim) <= max(4 * std, 0.06 * space.n)
    report("fig11_sim_vs_oe_connect", lines)

"""Figure 9 — dataset statistics table.

Regenerates both halves of Figure 9 (structure counts and gap statistics)
from the calibrated benchmark generators and prints achieved vs reported
values side by side.
"""

from __future__ import annotations

import pytest

from repro.data import FrequencyGroups
from repro.datasets import BENCHMARK_SPECS, load_benchmark
from repro.datasets.benchmarks import generate_benchmark_profile

DATASET_ORDER = ["connect", "pumsb", "accidents", "retail", "mushroom", "chess"]


def test_figure9_table(report, benchmark):
    def build_all():
        return {name: load_benchmark(name, seed=None) for name in DATASET_ORDER}

    datasets = benchmark.pedantic(build_all, rounds=1, iterations=1)

    lines = [
        f"{'Dataset':>10} {'#items':>8} {'#Trans.':>8} {'#Gps.':>12} {'Size1 Gps.':>12}"
    ]
    for name in DATASET_ORDER:
        dataset = datasets[name]
        spec, profile = dataset.spec, dataset.profile
        groups = FrequencyGroups.from_source(profile)
        lines.append(
            f"{name.upper():>10} {len(profile.domain):>8} {profile.n_transactions:>8} "
            f"{len(groups):>5}/{spec.n_groups:<6} {groups.n_singletons:>5}/{spec.n_singletons:<6}"
        )
    lines.append("")
    lines.append(
        f"{'Dataset':>10} {'Mean':>18} {'Median':>22} {'Min.':>22} {'Max.':>18}"
    )
    for name in DATASET_ORDER:
        dataset = datasets[name]
        spec = dataset.spec
        stats = FrequencyGroups.from_source(dataset.profile).gap_statistics()
        lines.append(
            f"{name.upper():>10} {stats.mean:>9.5f}/{spec.gap_mean:<8g} "
            f"{stats.median:>11.7f}/{spec.gap_median:<10g} "
            f"{stats.minimum:>11.7f}/{spec.gap_min:<10g} "
            f"{stats.maximum:>9.5f}/{spec.gap_max:<8g}"
        )
    lines.append("(achieved/reported; reported values from Figure 9 of the paper)")
    report("fig9_dataset_stats", lines)

    # Shape assertions: the discrete structure must match exactly, the
    # continuous gap statistics closely.
    for name in DATASET_ORDER:
        dataset = datasets[name]
        groups = FrequencyGroups.from_source(dataset.profile)
        assert len(dataset.profile.domain) == dataset.spec.n_items
        assert len(groups) == dataset.spec.n_groups
        assert groups.n_singletons == dataset.spec.n_singletons
        stats = groups.gap_statistics()
        assert stats.mean == pytest.approx(dataset.spec.gap_mean, rel=0.15)
        assert stats.median == pytest.approx(dataset.spec.gap_median, rel=0.5)


def test_generation_speed_retail(benchmark, rng):
    spec = BENCHMARK_SPECS["retail"]
    profile = benchmark(generate_benchmark_profile, spec, rng)
    assert len(profile.domain) == spec.n_items

"""Tests for the owner report, subset-of-interest estimates, the literal
Section 4.1 distribution formula, and streaming FIMI scans."""

import numpy as np
import pytest

from repro.core import o_estimate
from repro.data import FrequencyProfile, TransactionDatabase, scan_fimi_profile, write_fimi
from repro.errors import FormatError, GraphError
from repro.graph import crack_distribution, space_from_frequencies
from repro.graph.permanent import crack_distribution_permanent
from repro.recipe import full_report


class TestInterestParameter:
    def test_subset_sums_only_wanted_items(self, bigmart_space_h):
        full = o_estimate(bigmart_space_h)
        subset = o_estimate(bigmart_space_h, interest=[5, 2])
        degrees = dict(zip(bigmart_space_h.items, bigmart_space_h.outdegrees()))
        assert subset.value == pytest.approx(1 / degrees[5] + 1 / degrees[2])
        assert subset.value < full.value
        assert subset.n == bigmart_space_h.n

    def test_full_interest_equals_default(self, bigmart_space_h):
        everything = o_estimate(bigmart_space_h, interest=list(bigmart_space_h.items))
        assert everything.value == pytest.approx(o_estimate(bigmart_space_h).value)

    def test_interest_with_propagation(self, staircase_space):
        result = o_estimate(staircase_space, propagate=True, interest=["a", "b"])
        assert result.value == pytest.approx(2.0)  # both forced true pairs

    def test_unknown_interest_item_raises(self, bigmart_space_h):
        with pytest.raises(GraphError):
            o_estimate(bigmart_space_h, interest=["nope"])


class TestSection41Formula:
    def test_agrees_with_enumeration(self, bigmart_space_h):
        by_enumeration = crack_distribution(bigmart_space_h)
        by_permanents = crack_distribution_permanent(bigmart_space_h)
        assert by_permanents == pytest.approx(by_enumeration)

    def test_agrees_on_blocks(self, two_blocks_space):
        assert crack_distribution_permanent(two_blocks_space) == pytest.approx(
            crack_distribution(two_blocks_space)
        )

    def test_size_guard(self):
        freqs = {i: i / 10 for i in range(1, 10)}
        from repro.beliefs import ignorant_belief

        space = space_from_frequencies(ignorant_belief(freqs), freqs)
        with pytest.raises(GraphError, match="infeasible"):
            crack_distribution_permanent(space)


class TestScanFimiProfile:
    def test_counts_match_full_read(self, tmp_path):
        db = TransactionDatabase([[1, 2], [2, 3], [1, 2, 3], [3]])
        path = tmp_path / "data.dat"
        write_fimi(db, path)
        profile = scan_fimi_profile(path)
        assert profile == db.to_profile()

    def test_domain_extension(self, tmp_path):
        db = TransactionDatabase([[1]])
        path = tmp_path / "data.dat"
        write_fimi(db, path)
        profile = scan_fimi_profile(path, domain=[1, 2, 3])
        assert profile.item_count(3) == 0
        assert len(profile.domain) == 3

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_text("")
        with pytest.raises(FormatError):
            scan_fimi_profile(path)


class TestFullReport:
    @pytest.fixture
    def risky_profile(self):
        return FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)

    def test_sections_present(self, risky_profile):
        document = full_report(risky_profile, 0.1, rng=np.random.default_rng(0))
        for heading in ["## Data", "## Assess-Risk recipe", "# Disclosure risk profile",
                        "## Similarity-by-Sampling", "## Protection plan", "## Verdict"]:
            assert heading in document

    def test_disclose_case_skips_protection(self):
        profile = FrequencyProfile({i: 100 for i in range(1, 21)}, 1000)
        document = full_report(
            profile, 0.5, protect_strategy="quantile", rng=np.random.default_rng(0)
        )
        assert "## Protection plan" not in document
        assert "**Disclose.**" in document

    def test_protection_can_be_disabled(self, risky_profile):
        document = full_report(
            risky_profile, 0.1, protect_strategy=None, rng=np.random.default_rng(0)
        )
        assert "## Protection plan" not in document
        assert "Judgement call" in document

    def test_cli_integration(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "report.md"
        code = main(["--benchmark", "chess", "--full-report", str(path)])
        assert code == 0
        assert "## Verdict" in path.read_text()

"""Unit tests for the repro-assess CLI."""

import pytest

from repro.cli import build_parser, main
from repro.data import TransactionDatabase, write_fimi


class TestParser:
    def test_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_benchmark_and_fimi_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--benchmark", "chess", "--fimi", "x.dat"])

    def test_defaults(self):
        args = build_parser().parse_args(["--benchmark", "chess"])
        assert args.tolerance == 0.1
        assert args.runs == 5
        assert not args.similarity


class TestMain:
    def test_benchmark_run(self, capsys):
        code = main(["--benchmark", "chess", "--tolerance", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chess" in out
        assert "decision:" in out

    def test_fimi_run(self, tmp_path, capsys):
        db = TransactionDatabase([[1, 2], [2, 3], [1, 2, 3], [3], [1]] * 4)
        path = tmp_path / "data.dat"
        write_fimi(db, path)
        code = main(["--fimi", str(path), "--tolerance", "0.9"])
        assert code == 0
        assert "decision:" in capsys.readouterr().out

    def test_similarity_output(self, capsys):
        code = main(
            [
                "--benchmark",
                "chess",
                "--similarity",
                "--sample-fractions",
                "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Similarity-by-Sampling" in out
        assert "50%" in out

    def test_missing_file_is_reported(self, capsys):
        code = main(["--fimi", "/nonexistent/file.dat"])
        assert code != 0 or "error" in capsys.readouterr().err

    def test_stats_flag(self, capsys):
        code = main(["--benchmark", "chess", "--stats"])
        assert code == 0
        assert "frequency groups" in capsys.readouterr().out

    def test_report_written(self, tmp_path, capsys):
        path = tmp_path / "risk.md"
        code = main(["--benchmark", "chess", "--report", str(path)])
        assert code == 0
        assert "# Disclosure risk profile" in path.read_text()

    def test_assessment_saved(self, tmp_path, capsys):
        from repro.io import assessment_from_json, load_json

        path = tmp_path / "assessment.json"
        code = main(["--benchmark", "chess", "--save-assessment", str(path)])
        assert code == 0
        restored = assessment_from_json(load_json(path))
        assert restored.n_items == 75

    def test_protect_flag(self, capsys):
        code = main(["--benchmark", "chess", "--protect", "quantile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "protection plan" in out
        assert "quantile" in out

    def test_protect_skipped_when_disclosing(self, capsys):
        code = main(
            ["--benchmark", "retail", "--tolerance", "0.2", "--protect", "quantile"]
        )
        assert code == 0
        assert "protection plan" not in capsys.readouterr().out


class TestCrackCli:
    def test_smoke_gate(self, capsys):
        from repro.cli import crack_main

        assert crack_main(["--smoke"]) == 0
        assert "smoke ok" in capsys.readouterr().out

    def test_requires_instance(self, capsys):
        from repro.cli import crack_main

        assert crack_main([]) == 2
        assert "--instance" in capsys.readouterr().err

    def test_watch_requires_observations(self, capsys):
        from repro.cli import crack_main

        assert crack_main(["--instance", "x.json", "--watch"]) == 2
        assert "--watch" in capsys.readouterr().err

    def test_streams_events_from_files(self, tmp_path, capsys):
        import json

        from repro.cli import crack_main

        instance = tmp_path / "instance.json"
        instance.write_text(
            json.dumps(
                {
                    "adjacency": [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]],
                    "truth": [0, 1, 2, 3],
                }
            )
        )
        feed = tmp_path / "observations.jsonl"
        feed.write_text(
            '{"kind": "confirm", "item": 3, "anon": 3}\n{"kind": "close"}\n'
        )
        assert crack_main(
            ["--instance", str(instance), "--observations", str(feed)]
        ) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        forced = [e for e in lines if e["event"] == "forced"]
        assert [(e["item"], e["anon"]) for e in forced] == [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert all(e["crack"] for e in forced)
        summaries = [e for e in lines if e["event"] == "summary"]
        assert summaries and summaries[-1]["counts"]["undecided"] == 0

    def test_missing_instance_file_reported(self, tmp_path, capsys):
        from repro.cli import crack_main

        assert crack_main(["--instance", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_observation_line_reported(self, tmp_path, capsys):
        import json

        from repro.cli import crack_main

        instance = tmp_path / "instance.json"
        instance.write_text(json.dumps({"adjacency": [[0, 1], [0, 1]]}))
        feed = tmp_path / "observations.jsonl"
        feed.write_text('{"kind": "wat"}\n')
        assert crack_main(
            ["--instance", str(instance), "--observations", str(feed)]
        ) == 1
        assert "observation" in capsys.readouterr().err

"""Unit tests for the noise-model belief builders."""

import numpy as np
import pytest

from repro.beliefs import (
    gaussian_noise_belief,
    laplace_noise_belief,
    relative_error_belief,
)
from repro.errors import BeliefError


@pytest.fixture
def many_frequencies():
    rng = np.random.default_rng(0)
    return {i: float(f) for i, f in enumerate(0.05 + 0.9 * rng.random(500), start=1)}


class TestGaussianNoise:
    def test_zero_noise_is_compliant(self, many_frequencies, rng):
        belief = gaussian_noise_belief(many_frequencies, sigma=0.0, width=0.01, rng=rng)
        assert belief.is_compliant_for(many_frequencies)

    def test_compliancy_tracks_the_normal_cdf(self, many_frequencies):
        rng = np.random.default_rng(5)
        sigma = 0.02
        belief = gaussian_noise_belief(many_frequencies, sigma=sigma, width=sigma, rng=rng)
        alpha = belief.compliancy(many_frequencies)
        assert alpha == pytest.approx(0.683, abs=0.06)  # P(|N| <= 1 sigma)
        belief2 = gaussian_noise_belief(
            many_frequencies, sigma=sigma, width=2 * sigma, rng=np.random.default_rng(6)
        )
        assert belief2.compliancy(many_frequencies) == pytest.approx(0.954, abs=0.04)

    def test_width_zero_gives_point_beliefs(self, many_frequencies, rng):
        belief = gaussian_noise_belief(many_frequencies, sigma=0.01, width=0.0, rng=rng)
        assert belief.is_point_valued

    def test_invalid_parameters(self, many_frequencies, rng):
        with pytest.raises(BeliefError):
            gaussian_noise_belief(many_frequencies, sigma=-1, width=0.1, rng=rng)
        with pytest.raises(BeliefError):
            gaussian_noise_belief(many_frequencies, sigma=0.1, width=-1, rng=rng)


class TestLaplaceNoise:
    def test_compliancy_tracks_the_laplace_cdf(self, many_frequencies):
        scale = 0.02
        belief = laplace_noise_belief(
            many_frequencies, scale=scale, width=scale, rng=np.random.default_rng(7)
        )
        alpha = belief.compliancy(many_frequencies)
        assert alpha == pytest.approx(1 - np.exp(-1), abs=0.06)

    def test_zero_scale_is_compliant(self, many_frequencies, rng):
        belief = laplace_noise_belief(many_frequencies, scale=0.0, width=0.001, rng=rng)
        assert belief.is_compliant_for(many_frequencies)

    def test_invalid_parameters(self, many_frequencies, rng):
        with pytest.raises(BeliefError):
            laplace_noise_belief(many_frequencies, scale=-0.1, width=0.1, rng=rng)


class TestRelativeError:
    def test_always_compliant(self, many_frequencies):
        belief = relative_error_belief(many_frequencies, 0.1)
        assert belief.is_compliant_for(many_frequencies)

    def test_widths_scale_with_frequency(self):
        belief = relative_error_belief({1: 0.1, 2: 0.5}, 0.2)
        assert belief[1].width == pytest.approx(0.04)
        assert belief[2].width == pytest.approx(0.2)

    def test_zero_error_is_point_valued(self, many_frequencies):
        assert relative_error_belief(many_frequencies, 0.0).is_point_valued

    def test_clipping(self):
        belief = relative_error_belief({1: 0.9}, 0.5)
        assert belief[1].high == 1.0

    def test_invalid_parameter(self, many_frequencies):
        with pytest.raises(BeliefError):
            relative_error_belief(many_frequencies, -0.1)

"""Unit tests for mapping spaces (the consistent-mapping bipartite graph)."""

import numpy as np
import pytest

from repro.anonymize import anonymize
from repro.beliefs import ignorant_belief, point_belief, uniform_width_belief
from repro.errors import DomainMismatchError, GraphError
from repro.graph import (
    ExplicitMappingSpace,
    FrequencyMappingSpace,
    space_from_anonymized,
    space_from_frequencies,
)


class TestFrequencySpaceBigMart:
    def test_outdegrees_match_paper(self, bigmart_space_h):
        # Under belief h: O_1=6 (ignorant), O_2=5, O_3=4, O_4=5, O_5=2, O_6=4
        degrees = dict(zip(bigmart_space_h.items, bigmart_space_h.outdegrees()))
        assert degrees == {1: 6, 2: 5, 3: 4, 4: 5, 5: 2, 6: 4}

    def test_candidates_agree_with_is_edge(self, bigmart_space_h):
        space = bigmart_space_h
        for i in range(space.n):
            candidates = set(space.candidates(i))
            for j in range(space.n):
                assert (j in candidates) == space.is_edge(i, j)

    def test_fully_compliant(self, bigmart_space_h):
        assert list(bigmart_space_h.compliant_indices()) == list(range(6))
        assert bigmart_space_h.compliant_mask().all()

    def test_edge_count(self, bigmart_space_h):
        assert bigmart_space_h.edge_count() == 6 + 5 + 4 + 5 + 2 + 4

    def test_adjacency_matrix_shape_and_content(self, bigmart_space_h):
        matrix = bigmart_space_h.adjacency_matrix()
        assert matrix.shape == (6, 6)
        assert matrix.sum() == bigmart_space_h.edge_count()

    def test_count_cracks(self, bigmart_space_h):
        truth = [bigmart_space_h.true_partner(i) for i in range(6)]
        assert bigmart_space_h.count_cracks(truth) == 6
        rotated = truth[1:] + truth[:1]
        assert bigmart_space_h.count_cracks(rotated) < 6

    def test_item_index(self, bigmart_space_h):
        assert bigmart_space_h.items[bigmart_space_h.item_index(5)] == 5
        with pytest.raises(GraphError):
            bigmart_space_h.item_index("nope")


class TestSpaceConstruction:
    def test_ignorant_space_is_complete(self, bigmart_frequencies):
        space = space_from_frequencies(
            ignorant_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert (space.outdegrees() == 6).all()

    def test_point_space_groups(self, bigmart_frequencies):
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert sorted(space.outdegrees()) == [1, 1, 4, 4, 4, 4]

    def test_domain_mismatch_rejected(self, bigmart_frequencies):
        belief = ignorant_belief([1, 2])
        with pytest.raises(DomainMismatchError):
            space_from_frequencies(belief, bigmart_frequencies)

    def test_noncompliant_items_detected(self, bigmart_frequencies):
        belief = uniform_width_belief(bigmart_frequencies, 0.02).replace({5: (0.8, 0.9)})
        space = space_from_frequencies(belief, bigmart_frequencies)
        item5 = space.item_index(5)
        assert not space.has_true_edge(item5)
        assert item5 not in set(space.compliant_indices())

    def test_from_anonymized_pairing_is_truth(self, bigmart_db, bigmart_frequencies, rng):
        released = anonymize(bigmart_db, rng=rng)
        belief = point_belief(bigmart_frequencies)
        space = space_from_anonymized(belief, released)
        for i, item in enumerate(space.items):
            true_anon = space.anonymized[space.true_partner(i)]
            assert released.mapping.deanonymize_item(true_anon) == item

    def test_from_anonymized_equals_from_frequencies_outdegrees(
        self, bigmart_db, bigmart_frequencies, belief_h, rng
    ):
        released = anonymize(bigmart_db, rng=rng)
        via_db = space_from_anonymized(belief_h, released)
        via_freq = space_from_frequencies(belief_h, bigmart_frequencies)
        assert sorted(via_db.outdegrees()) == sorted(via_freq.outdegrees())


class TestExplicitSpace:
    def test_basic(self, staircase_space):
        assert staircase_space.outdegree(0) == 1
        assert staircase_space.outdegree(3) == 4
        assert staircase_space.is_edge(2, 1)
        assert not staircase_space.is_edge(0, 3)

    def test_invalid_adjacency_rejected(self):
        with pytest.raises(GraphError):
            ExplicitMappingSpace(
                items=(1,), anonymized=(2,), adjacency=[[5]], true_partner_of=[0]
            )

    def test_pairing_must_be_permutation(self):
        with pytest.raises(GraphError):
            ExplicitMappingSpace(
                items=(1, 2),
                anonymized=("a", "b"),
                adjacency=[[0], [1]],
                true_partner_of=[0, 0],
            )

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(GraphError):
            ExplicitMappingSpace(
                items=(1, 2), anonymized=("a",), adjacency=[[0]], true_partner_of=[0]
            )

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            ExplicitMappingSpace(items=(), anonymized=(), adjacency=[], true_partner_of=[])


class TestFrequencySpaceValidation:
    def test_pairing_permutation_enforced(self):
        with pytest.raises(GraphError):
            FrequencyMappingSpace(
                items=(1, 2),
                anonymized=("a", "b"),
                observed=[0.5, 0.4],
                intervals=[(0, 1), (0, 1)],
                true_partner_of=[1, 1],
            )

    def test_alignment_enforced(self):
        with pytest.raises(GraphError):
            FrequencyMappingSpace(
                items=(1, 2),
                anonymized=("a", "b"),
                observed=[0.5],
                intervals=[(0, 1), (0, 1)],
                true_partner_of=[0, 1],
            )

"""Unit tests for frequency groups and gap statistics."""

import pytest

from repro.data import FrequencyGroups, frequency_table
from repro.data.frequency import GapStatistics
from repro.errors import DataError


class TestFrequencyGroups:
    def test_bigmart_groups(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        assert len(groups) == 3
        assert groups.frequencies_sorted == (0.3, 0.4, 0.5)
        assert groups.sizes == (1, 1, 4)

    def test_group_membership(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        assert groups.group_index(5) == 0
        assert groups.group_index(2) == 1
        assert groups.group_frequency(1) == 0.5

    def test_unknown_item_raises(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        with pytest.raises(DataError):
            groups.group_index(99)

    def test_singleton_count(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        assert groups.n_singletons == 2

    def test_gaps(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        assert groups.gaps() == pytest.approx((0.1, 0.1))

    def test_gap_statistics(self):
        groups = FrequencyGroups({1: 0.1, 2: 0.2, 3: 0.5, 4: 0.6})
        stats = groups.gap_statistics()
        assert stats.minimum == pytest.approx(0.1)
        assert stats.maximum == pytest.approx(0.3)
        assert stats.median == pytest.approx(0.1)
        assert stats.mean == pytest.approx(0.5 / 3)

    def test_median_gap_even_count(self):
        groups = FrequencyGroups({1: 0.0, 2: 0.1, 3: 0.4})
        # gaps 0.1 and 0.3 -> median is their average
        assert groups.median_gap() == pytest.approx(0.2)

    def test_single_group_has_no_gaps(self):
        groups = FrequencyGroups({1: 0.5, 2: 0.5})
        assert groups.gaps() == ()
        with pytest.raises(DataError):
            groups.gap_statistics()

    def test_empty_domain_rejected(self):
        with pytest.raises(DataError):
            FrequencyGroups({})

    def test_out_of_range_frequency_rejected(self):
        with pytest.raises(DataError):
            FrequencyGroups({1: 1.5})

    def test_from_source(self, bigmart_db, bigmart_frequencies):
        groups = FrequencyGroups.from_source(bigmart_db)
        assert groups.frequencies_sorted == (0.3, 0.4, 0.5)

    def test_groups_partition_the_domain(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        seen = [item for group in groups.groups for item in group]
        assert sorted(seen) == sorted(bigmart_frequencies)


class TestGapStatistics:
    def test_from_gaps_single(self):
        stats = GapStatistics.from_gaps([0.25])
        assert stats == GapStatistics(0.25, 0.25, 0.25, 0.25)

    def test_from_gaps_empty_rejected(self):
        with pytest.raises(DataError):
            GapStatistics.from_gaps([])

    def test_median_is_order_independent(self):
        a = GapStatistics.from_gaps([0.3, 0.1, 0.2])
        b = GapStatistics.from_gaps([0.1, 0.2, 0.3])
        assert a == b
        assert a.median == pytest.approx(0.2)


def test_frequency_table_matches_db(bigmart_db, bigmart_frequencies):
    assert frequency_table(bigmart_db) == pytest.approx(bigmart_frequencies)

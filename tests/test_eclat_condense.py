"""Unit tests for ECLAT and the closed/maximal condensations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TransactionDatabase
from repro.datasets import random_database
from repro.errors import DataError
from repro.mining import (
    apriori,
    closed_itemsets,
    eclat,
    fp_growth,
    maximal_itemsets,
    vertical_representation,
)


@pytest.fixture
def basket_db():
    return TransactionDatabase(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )


def as_set(itemsets):
    return {(fi.items, round(fi.support, 9)) for fi in itemsets}


class TestVerticalRepresentation:
    def test_tidsets(self, basket_db):
        tidsets = vertical_representation(basket_db)
        assert tidsets["bread"] == frozenset({0, 1, 3, 4})
        assert tidsets["cola"] == frozenset({2, 4})

    def test_tidset_sizes_are_counts(self, basket_db):
        tidsets = vertical_representation(basket_db)
        for item in basket_db.domain:
            assert len(tidsets[item]) == basket_db.item_count(item)


class TestEclat:
    def test_agrees_with_apriori(self, basket_db):
        for min_support in [0.2, 0.4, 0.6, 0.8]:
            assert as_set(eclat(basket_db, min_support)) == as_set(
                apriori(basket_db, min_support)
            )

    def test_max_size(self, basket_db):
        result = eclat(basket_db, 0.2, max_size=2)
        assert all(len(fi) <= 2 for fi in result)

    def test_invalid_support(self, basket_db):
        with pytest.raises(DataError):
            eclat(basket_db, 0.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_three_miners_agree_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        db = random_database(8, 40, density=0.35, rng=rng)
        reference = as_set(apriori(db, 0.25))
        assert as_set(eclat(db, 0.25)) == reference
        assert as_set(fp_growth(db, 0.25)) == reference


class TestClosedItemsets:
    def test_closed_subset_of_all(self, basket_db):
        everything = apriori(basket_db, 0.2)
        closed = closed_itemsets(everything)
        assert as_set(closed) <= as_set(everything)

    def test_non_closed_dropped(self, basket_db):
        # {beer} has support 0.6 and so does {beer, diapers}: beer alone
        # is not closed.
        closed = {fi.items for fi in closed_itemsets(apriori(basket_db, 0.2))}
        assert frozenset({"beer"}) not in closed
        assert frozenset({"beer", "diapers"}) in closed

    def test_supports_recoverable(self, basket_db):
        # Every frequent itemset's support equals the max support of a
        # closed superset — the defining property of the condensation.
        everything = apriori(basket_db, 0.2)
        closed = closed_itemsets(everything)
        for itemset in everything:
            candidates = [
                c.support for c in closed if itemset.items <= c.items
            ]
            assert max(candidates) == pytest.approx(itemset.support)


class TestMaximalItemsets:
    def test_maximal_subset_of_closed(self, basket_db):
        everything = apriori(basket_db, 0.2)
        closed = {fi.items for fi in closed_itemsets(everything)}
        maximal = {fi.items for fi in maximal_itemsets(everything)}
        assert maximal <= closed

    def test_no_frequent_strict_superset(self, basket_db):
        everything = apriori(basket_db, 0.2)
        frequent = {fi.items for fi in everything}
        for maximal in maximal_itemsets(everything):
            assert not any(
                maximal.items < other for other in frequent
            )

    def test_boundary_recoverable(self, basket_db):
        # An itemset is frequent iff it is a subset of some maximal set.
        everything = apriori(basket_db, 0.2)
        maximal = [fi.items for fi in maximal_itemsets(everything)]
        for itemset in everything:
            assert any(itemset.items <= m for m in maximal)

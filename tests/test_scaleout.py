"""Scale-out serving: leases, the shared cache tier, the asyncio front
end, keep-alive, and the load harness.

Fast, in-process tests run in tier 1; the tests that launch real
``repro-serve`` subprocesses (cross-process cold races, killed-owner
takeover) carry the ``faults`` marker and run in the faults CI job.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.data.database import FrequencyProfile
from repro.errors import ReproError
from repro.io import profile_to_json
from repro.service import AssessmentCache, AssessmentEngine, ServiceCore
from repro.service.aio import AsyncAssessmentServer
from repro.service.faults import InjectedCrash
from repro.service.lease import (
    LeaseState,
    acquire_lease,
    lease_state,
    sweep_stale_leases,
    take_over,
)
from repro.service.loadgen import (
    WorkloadSpec,
    append_trajectory,
    build_payloads,
    request_stream,
    synthetic_profile,
)
from repro.service.server import make_server
from repro.recipe.assess import Decision, RiskAssessment


@pytest.fixture
def profile():
    return FrequencyProfile({1: 30, 2: 30, 3: 60, 4: 90}, 100)


def _assessment(tolerance: float = 0.9) -> RiskAssessment:
    return RiskAssessment(
        decision=Decision.DISCLOSE_POINT_VALUED,
        tolerance=tolerance,
        n_items=4,
        g=3,
    )


# -- lease mechanics --------------------------------------------------------


class TestLease:
    def test_exclusive_acquire(self, tmp_path):
        path = tmp_path / "fp.lease"
        lease = acquire_lease(path)
        assert lease is not None and path.exists()
        assert acquire_lease(path) is None  # somebody holds it
        lease.release()
        assert not path.exists()
        assert acquire_lease(path) is not None  # free again

    def test_release_is_idempotent(self, tmp_path):
        lease = acquire_lease(tmp_path / "fp.lease")
        lease.release()
        lease.release()
        assert lease.released

    def test_heartbeat_bumps_payload(self, tmp_path):
        path = tmp_path / "fp.lease"
        lease = acquire_lease(path)
        assert lease.heartbeat() == 1
        assert lease.heartbeat() == 2
        payload = json.loads(path.read_text())
        assert payload == {"heartbeats": 2, "pid": os.getpid()}
        lease.release()

    def test_heartbeat_after_release_raises(self, tmp_path):
        lease = acquire_lease(tmp_path / "fp.lease")
        lease.release()
        with pytest.raises(ReproError):
            lease.heartbeat()

    def test_state_classification(self, tmp_path):
        path = tmp_path / "fp.lease"
        assert lease_state(path).kind == LeaseState.MISSING
        lease = acquire_lease(path)
        state = lease_state(path, stale_after=60.0)
        assert state.kind == LeaseState.HELD
        assert state.info.pid == os.getpid() and state.info.owner_alive
        # Old mtime => stale even though the owner pid is alive (hung).
        os.utime(path, (time.time() - 120, time.time() - 120))
        assert lease_state(path, stale_after=60.0).kind == LeaseState.STALE
        lease.release()

    def test_dead_owner_is_stale_and_taken_over(self, tmp_path):
        path = tmp_path / "fp.lease"
        lease = acquire_lease(path, pid=2**22 + 12345)  # vanishingly unlikely pid
        lease._write_payload()
        state = lease_state(path, stale_after=60.0)
        assert state.kind == LeaseState.STALE and not state.info.owner_alive
        taken = take_over(path, stale_after=60.0)
        assert taken is not None and taken.pid == os.getpid()
        taken.release()

    def test_take_over_respects_live_owner(self, tmp_path):
        path = tmp_path / "fp.lease"
        lease = acquire_lease(path)
        assert take_over(path, stale_after=60.0) is None
        lease.release()

    def test_sweep_removes_only_stale(self, tmp_path):
        live = acquire_lease(tmp_path / "live.lease")
        dead = acquire_lease(tmp_path / "dead.lease", pid=2**22 + 54321)
        dead._write_payload()
        assert sweep_stale_leases(tmp_path, stale_after=60.0) == 1
        assert (tmp_path / "live.lease").exists()
        assert not (tmp_path / "dead.lease").exists()
        live.release()


# -- shared cache tier (in-process) -----------------------------------------


class TestSharedCache:
    def test_shared_requires_directory(self):
        with pytest.raises(ReproError):
            AssessmentCache(shared=True)

    def test_cold_compute_acquires_and_releases_lease(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path, shared=True)
        calls = []

        def compute():
            calls.append(1)
            assert (tmp_path / "fp.lease").exists()
            return _assessment()

        assessment, origin = cache.get_or_compute("fp", compute)
        assert origin == "computed" and calls == [1]
        assert not (tmp_path / "fp.lease").exists()
        stats = cache.stats()
        assert stats["lease_acquired"] == 1 and stats["misses"] == 1

    def test_two_cache_instances_single_flight(self, tmp_path):
        """Two caches on one directory: one compute, one coalesce."""
        a = AssessmentCache(directory=tmp_path, shared=True)
        b = AssessmentCache(directory=tmp_path, shared=True)
        started = threading.Event()
        release = threading.Event()
        results = {}

        def slow_compute():
            started.set()
            assert release.wait(5.0)
            return _assessment()

        def leader():
            results["a"] = a.get_or_compute("fp", slow_compute)

        def follower():
            assert started.wait(5.0)
            results["b"] = b.get_or_compute("fp", lambda: _assessment())

        threads = [threading.Thread(target=leader), threading.Thread(target=follower)]
        threads[0].start()
        threads[1].start()
        time.sleep(0.15)  # let the follower reach the lease wait loop
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert results["a"][1] == "computed"
        assert results["b"][1] == "coalesced"
        assert b.stats()["lease_coalesced"] == 1

    def test_deadline_expiry_computes_locally(self, tmp_path):
        blocker = acquire_lease(tmp_path / "fp.lease")
        cache = AssessmentCache(directory=tmp_path, shared=True)
        assessment, origin = cache.compute_shared(
            "fp", _assessment, timeout_seconds=0.05
        )
        assert origin == "computed"
        assert cache.stats()["lease_timeouts"] == 1
        blocker.release()

    def test_store_predicate_withholds_partials(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path, shared=True)
        assessment, origin = cache.compute_shared(
            "fp", _assessment, store=lambda a: False
        )
        assert origin == "computed"
        assert cache.get("fp") is None
        assert not (tmp_path / "fp.json").exists()

    def test_crash_leaves_lease_for_stale_takeover(self, tmp_path):
        """An InjectedCrash mid-compute leaves kill -9 debris; a later
        replica takes the quiet lease over once it goes stale."""
        crashed = AssessmentCache(
            directory=tmp_path, shared=True, lease_stale_seconds=0.2
        )

        def dies():
            raise InjectedCrash("engine.compute", "simulated kill")

        with pytest.raises(InjectedCrash):
            crashed.get_or_compute("fp", dies)
        assert (tmp_path / "fp.lease").exists()  # debris, like a real crash

        survivor = AssessmentCache(
            directory=tmp_path, shared=True, lease_stale_seconds=0.2
        )
        assessment, origin = survivor.compute_shared(
            "fp", _assessment, timeout_seconds=5.0
        )
        assert origin == "computed"
        assert survivor.stats()["lease_takeovers"] == 1
        assert not (tmp_path / "fp.lease").exists()

    def test_plain_exception_releases_lease(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path, shared=True)

        def fails():
            raise OSError("transient")

        with pytest.raises(OSError):
            cache.get_or_compute("fp", fails)
        assert not (tmp_path / "fp.lease").exists()

    def test_construction_sweeps_stale_leases(self, tmp_path):
        dead = acquire_lease(tmp_path / "old.lease", pid=2**22 + 99)
        dead._write_payload()
        cache = AssessmentCache(
            directory=tmp_path, shared=True, lease_stale_seconds=60.0
        )
        assert not (tmp_path / "old.lease").exists()
        assert cache.stats()["stale_leases_swept"] == 1

    def test_clear_disk_removes_leases(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path, shared=True)
        acquire_lease(tmp_path / "fp.lease")
        cache.clear(disk=True)
        assert list(tmp_path.glob("*.lease")) == []


# -- the asyncio front end --------------------------------------------------


def _run(coroutine):
    return asyncio.run(coroutine)


async def _start_server(engine=None):
    core = ServiceCore(engine=engine) if engine is not None else None
    server = AsyncAssessmentServer(core=core)
    await server.start("127.0.0.1", 0)
    return server


async def _roundtrip(port, method, path, body=None, reader_writer=None):
    if reader_writer is None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    else:
        reader, writer = reader_writer
    payload = b"" if body is None else body
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode()
    writer.write(head + payload)
    await writer.drain()
    response_head = await reader.readuntil(b"\r\n\r\n")
    status = int(response_head.split(b" ")[1])
    length = 0
    for line in response_head.split(b"\r\n"):
        if line.lower().startswith(b"content-length"):
            length = int(line.split(b":")[1])
    data = json.loads(await reader.readexactly(length)) if length else {}
    return status, data, (reader, writer)


class TestAsyncServer:
    def test_healthz_and_metrics(self):
        async def scenario():
            server = await _start_server()
            status, body, rw = await _roundtrip(server.server_port, "GET", "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, body, _ = await _roundtrip(
                server.server_port, "GET", "/metrics", reader_writer=rw
            )
            assert status == 200 and "admission" in body
            rw[1].close()
            await server.shutdown_gracefully(2.0)

        _run(scenario())

    def test_assess_keep_alive_and_cache(self, profile):
        async def scenario():
            server = await _start_server()
            body = json.dumps(
                {"profile": profile_to_json(profile), "tolerance": 0.9, "runs": 1}
            ).encode()
            status, first, rw = await _roundtrip(
                server.server_port, "POST", "/assess", body
            )
            assert status == 200 and first["cached"] is False
            status, second, _ = await _roundtrip(
                server.server_port, "POST", "/assess", body, reader_writer=rw
            )
            assert status == 200 and second["cached"] is True
            assert second["assessment"] == first["assessment"]
            rw[1].close()
            await server.shutdown_gracefully(2.0)

        _run(scenario())

    def test_pipelined_requests_answer_in_order(self):
        async def scenario():
            server = await _start_server()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.server_port
            )
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"
                b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            await writer.drain()
            statuses = []
            for _ in range(3):
                head = await reader.readuntil(b"\r\n\r\n")
                statuses.append(int(head.split(b" ")[1]))
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length"):
                        length = int(line.split(b":")[1])
                await reader.readexactly(length)
            assert statuses == [200, 200, 404]
            writer.close()
            await server.shutdown_gracefully(2.0)

        _run(scenario())

    def test_malformed_head_answers_400_and_closes(self):
        async def scenario():
            server = await _start_server()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.server_port
            )
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b" 400 " in head
            length = int(
                [
                    line.split(b":")[1]
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                ][0]
            )
            await reader.readexactly(length)
            assert await reader.read() == b""  # server hung up
            writer.close()
            await server.shutdown_gracefully(2.0)

        _run(scenario())

    def test_validation_error_maps_to_400(self, profile):
        async def scenario():
            server = await _start_server()
            body = json.dumps(
                {"profile": profile_to_json(profile), "tolerance": -1}
            ).encode()
            status, payload, rw = await _roundtrip(
                server.server_port, "POST", "/assess", body
            )
            assert status == 400 and payload["error"]["type"] == "ValueError"
            rw[1].close()
            await server.shutdown_gracefully(2.0)

        _run(scenario())

    def test_connection_close_honoured(self):
        async def scenario():
            server = await _start_server()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.server_port
            )
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"Connection: close" in head
            length = int(
                [
                    line.split(b":")[1]
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                ][0]
            )
            await reader.readexactly(length)
            assert await reader.read() == b""
            writer.close()
            await server.shutdown_gracefully(2.0)

        _run(scenario())


# -- threaded server keep-alive ---------------------------------------------


class TestThreadedKeepAlive:
    def test_connection_reused_across_requests(self, profile):
        server = make_server(host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.server_port, timeout=10
            )
            connection.request("GET", "/healthz")
            first = connection.getresponse()
            assert first.status == 200 and first.version == 11
            first.read()
            socket_before = connection.sock
            assert socket_before is not None  # keep-alive left it open
            body = json.dumps(
                {"profile": profile_to_json(profile), "tolerance": 0.9}
            )
            connection.request(
                "POST", "/assess", body=body,
                headers={"Content-Type": "application/json"},
            )
            second = connection.getresponse()
            assert second.status == 200
            second.read()
            assert connection.sock is socket_before  # same TCP connection
            connection.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_error_responses_carry_content_length(self):
        server = make_server(host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.server_port, timeout=10
            )
            for path, expected in (("/nope", 404), ("/assess", 405)):
                connection.request("GET", path)
                response = connection.getresponse()
                declared = int(response.headers["Content-Length"])
                data = response.read()
                assert len(data) == declared
                assert response.status in (404, expected)
            connection.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# -- metrics extensions -----------------------------------------------------


class TestMetricsExtensions:
    def test_metrics_payload_has_routes_histograms_admission(self, profile):
        engine = AssessmentEngine()
        core = ServiceCore(engine=engine)
        body = json.dumps(
            {"profile": profile_to_json(profile), "tolerance": 0.9}
        ).encode()
        assert core.dispatch("POST", "/assess", body).status == 200
        response = core.dispatch("GET", "/metrics")
        assert response.status == 200
        payload = response.payload
        assert payload["metrics"]["counters"]["route:POST /assess"] == 1
        assert payload["metrics"]["counters"]["route:GET /metrics"] == 1
        histogram = payload["metrics"]["histograms"]["latency:POST /assess"]
        assert histogram["count"] == 1
        assert sum(histogram["counts"]) == 1
        assert len(histogram["counts"]) == len(histogram["buckets_seconds"]) + 1
        admission = payload["admission"]
        assert admission == {
            "inflight": 0,
            "queued": 0,
            "max_inflight": 8,
            "max_queue": 32,
        }

    def test_unknown_route_counts_as_other(self):
        core = ServiceCore()
        assert core.dispatch("GET", "/wat").status == 404
        assert core.engine.metrics.counter("route:other") == 1


# -- the load harness (units) -----------------------------------------------


class TestLoadgenUnits:
    def test_payloads_are_deterministic_and_distinct(self):
        spec = WorkloadSpec(profiles=5, seed=3)
        first = build_payloads(spec)
        second = build_payloads(spec)
        assert first == second
        assert len(set(first)) == 5  # distinct fingerprints

    def test_request_stream_replays(self):
        spec = WorkloadSpec(profiles=10, seed=7)
        a = [index for index, _ in zip(request_stream(spec, 0), range(50))]
        b = [index for index, _ in zip(request_stream(spec, 0), range(50))]
        c = [index for index, _ in zip(request_stream(spec, 1), range(50))]
        assert a == b
        assert a != c  # connections draw independent streams
        assert all(0 <= index < 10 for index in a)

    def test_zipf_skews_toward_rank_zero(self):
        spec = WorkloadSpec(profiles=20, zipf_s=1.2, seed=0)
        draws = [index for index, _ in zip(request_stream(spec, 0), range(2000))]
        counts = [draws.count(rank) for rank in range(20)]
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[-1]

    def test_synthetic_profiles_distinct(self):
        profiles = [synthetic_profile(index, 10) for index in range(8)]
        frequencies = [tuple(sorted(p.frequencies().items())) for p in profiles]
        assert len(set(frequencies)) == 8

    def test_append_trajectory_creates_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_service.json"
        report = append_trajectory(path, [], {"computed_total": 3}, label="one")
        assert report["benchmark"] == "bench_service"
        assert len(report["trajectory"]) == 1
        report = append_trajectory(path, [], None, label="two")
        assert [record["label"] for record in report["trajectory"]] == [
            "one",
            "two",
        ]
        on_disk = json.loads(path.read_text())
        assert on_disk == report


# -- cross-process single-flight (real subprocesses) ------------------------


def _serve_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_server(args, env):
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            f"from repro.cli import serve_main; "
            f"raise SystemExit(serve_main({args!r}))",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _await_port(process):
    banner = process.stdout.readline()
    assert "listening on http://" in banner, banner
    return int(banner.rsplit(":", 1)[1])


def _post_assess(port, payload, timeout=60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request(
            "POST", "/assess", body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _get_metrics(port):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", "/metrics")
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


@pytest.mark.faults
class TestCrossProcessSingleFlight:
    @pytest.mark.parametrize("flavor_args", [[], ["--async"]])
    def test_two_replicas_one_cold_compute(self, tmp_path, profile, flavor_args):
        """Two real server processes race one cold fingerprint: exactly
        one computes, both answer byte-identical assessments, one
        artifact lands in the shared directory."""
        env = _serve_env()
        cache_dir = tmp_path / "cache"
        args = [
            "--port", "0", "--grace", "2",
            "--cache-dir", str(cache_dir), "--shared-cache",
        ] + flavor_args
        payload = {
            "profile": profile_to_json(profile),
            "tolerance": 0.9,
            "runs": 1,
        }
        servers = [_spawn_server(args, env) for _ in range(2)]
        try:
            ports = [_await_port(process) for process in servers]
            results = {}

            def hit(name, port):
                results[name] = _post_assess(port, payload)

            threads = [
                threading.Thread(target=hit, args=(name, port))
                for name, port in zip("ab", ports)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            status_a, body_a = results["a"]
            status_b, body_b = results["b"]
            assert status_a == 200 and status_b == 200
            answer_a = json.loads(body_a)
            answer_b = json.loads(body_b)
            assert answer_a["fingerprint"] == answer_b["fingerprint"]
            # Byte-identical artifacts: the canonical JSON of both
            # replicas' assessments must match exactly.
            assert json.dumps(answer_a["assessment"], sort_keys=True) == json.dumps(
                answer_b["assessment"], sort_keys=True
            )
            snapshots = [_get_metrics(port) for port in ports]
            computed = [
                snapshot["metrics"]["counters"].get("computed", 0)
                for snapshot in snapshots
            ]
            assert sum(computed) == 1, computed  # exactly one cold compute
            coalesced = sum(
                snapshot["cache"]["coalesced"] + snapshot["cache"]["disk_hits"]
                for snapshot in snapshots
            )
            assert coalesced >= 1, snapshots
            artifacts = list(cache_dir.glob("*.json"))
            assert len(artifacts) == 1
            assert list(cache_dir.glob("*.lease")) == []
        finally:
            for process in servers:
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            for process in servers:
                process.wait(timeout=15)
                process.stdout.close()

    def test_killed_owner_lease_is_taken_over(self, tmp_path, profile):
        """A replica killed with SIGKILL mid-compute leaves its lease
        behind; a fresh replica on the same directory recovers (sweep on
        construction + stale takeover) and answers."""
        env = _serve_env()
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        # Simulate the kill -9 debris deterministically: a lease whose
        # owner pid is a subprocess we already reaped.
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait(timeout=10)
        dead_pid = probe.pid
        from repro.service.fingerprint import AssessmentParams, request_fingerprint

        fingerprint = request_fingerprint(
            profile, AssessmentParams(tolerance=0.9, runs=1)
        )
        lease = acquire_lease(cache_dir / f"{fingerprint}.lease", pid=dead_pid)
        lease._write_payload()

        args = [
            "--port", "0", "--grace", "2",
            "--cache-dir", str(cache_dir), "--shared-cache",
        ]
        process = _spawn_server(args, env)
        try:
            port = _await_port(process)
            status, body = _post_assess(
                port,
                {"profile": profile_to_json(profile), "tolerance": 0.9, "runs": 1},
            )
            assert status == 200
            assert json.loads(body)["cached"] is False
            snapshot = _get_metrics(port)
            cache_stats = snapshot["cache"]
            # The dead owner's lease never blocked the request: it was
            # swept at startup or taken over at compute time.
            assert (
                cache_stats["stale_leases_swept"] + cache_stats["lease_takeovers"]
                >= 1
            ), cache_stats
            assert list(cache_dir.glob("*.lease")) == []
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
            process.wait(timeout=15)
            process.stdout.close()

    def test_async_flag_serves_and_shuts_down(self):
        env = _serve_env()
        process = _spawn_server(["--port", "0", "--grace", "2", "--async"], env)
        try:
            port = _await_port(process)
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
            connection.close()
        finally:
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=15)
        assert process.returncode == 0
        assert "shutting down" in out

"""Unit tests for the Lemma 1-4 closed forms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core import (
    expected_cracks_ignorant,
    expected_cracks_point_valued,
    expected_cracks_point_valued_subset,
)
from repro.data import FrequencyGroups
from repro.errors import DataError, DomainMismatchError


class TestLemma1And2:
    def test_ignorant_is_one(self):
        for n in [1, 5, 1000]:
            assert expected_cracks_ignorant(n) == 1.0

    def test_subset_of_interest(self):
        assert expected_cracks_ignorant(10, 3) == pytest.approx(0.3)
        assert expected_cracks_ignorant(10, 10) == pytest.approx(1.0)
        assert expected_cracks_ignorant(10, 0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(DataError):
            expected_cracks_ignorant(0)
        with pytest.raises(DataError):
            expected_cracks_ignorant(5, 6)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 7), seed=st.integers(0, 10_000))
    def test_lemma1_matches_enumeration(self, n, seed):
        # Average fixed points over all permutations is exactly 1.
        from itertools import permutations

        total = hits = 0
        for perm in permutations(range(n)):
            total += 1
            hits += sum(1 for i in range(n) if perm[i] == i)
        assert hits / total == pytest.approx(expected_cracks_ignorant(n))


class TestLemma3:
    def test_bigmart_g(self, bigmart_frequencies):
        assert expected_cracks_point_valued(bigmart_frequencies) == 3.0

    def test_all_distinct_gives_n(self):
        freqs = {i: i / 10 for i in range(1, 6)}
        assert expected_cracks_point_valued(freqs) == 5.0

    def test_all_equal_gives_one(self):
        assert expected_cracks_point_valued({1: 0.5, 2: 0.5, 3: 0.5}) == 1.0

    def test_accepts_frequency_groups(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        assert expected_cracks_point_valued(groups) == 3.0


class TestLemma4:
    def test_bigmart_subsets(self, bigmart_frequencies):
        # Group sizes: {5}:1 at 0.3, {2}:1 at 0.4, {1,3,4,6}:4 at 0.5.
        assert expected_cracks_point_valued_subset(
            bigmart_frequencies, [5]
        ) == pytest.approx(1.0)
        assert expected_cracks_point_valued_subset(
            bigmart_frequencies, [1, 3]
        ) == pytest.approx(0.5)
        assert expected_cracks_point_valued_subset(
            bigmart_frequencies, [2, 5, 1]
        ) == pytest.approx(2.25)

    def test_full_domain_reduces_to_lemma3(self, bigmart_frequencies):
        assert expected_cracks_point_valued_subset(
            bigmart_frequencies, bigmart_frequencies
        ) == pytest.approx(expected_cracks_point_valued(bigmart_frequencies))

    def test_empty_interest(self, bigmart_frequencies):
        assert expected_cracks_point_valued_subset(bigmart_frequencies, []) == 0.0

    def test_unknown_interest_item_rejected(self, bigmart_frequencies):
        with pytest.raises(DomainMismatchError):
            expected_cracks_point_valued_subset(bigmart_frequencies, [99])

"""Unit tests for belief intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.beliefs import Interval
from repro.beliefs.interval import FULL_INTERVAL
from repro.errors import InvalidIntervalError

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestConstruction:
    def test_basic(self):
        interval = Interval(0.2, 0.7)
        assert interval.low == 0.2
        assert interval.high == 0.7
        assert interval.width == pytest.approx(0.5)

    @pytest.mark.parametrize("low,high", [(-0.1, 0.5), (0.5, 1.1), (0.7, 0.2)])
    def test_invalid_bounds(self, low, high):
        with pytest.raises(InvalidIntervalError):
            Interval(low, high)

    def test_point(self):
        interval = Interval.point(0.4)
        assert interval.is_point
        assert interval.width == 0.0

    def test_around_clamps(self):
        assert Interval.around(0.05, 0.2) == Interval(0.0, 0.25)
        assert Interval.around(0.95, 0.2) == Interval(0.75, 1.0)

    def test_around_negative_delta_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval.around(0.5, -0.1)


class TestPredicates:
    def test_contains_endpoints(self):
        interval = Interval(0.2, 0.7)
        assert 0.2 in interval
        assert 0.7 in interval
        assert 0.1 not in interval

    def test_contains_interval_matches_definition_7(self):
        assert Interval(0.0, 1.0).contains_interval(Interval(0.2, 0.3))
        assert not Interval(0.2, 0.3).contains_interval(Interval(0.0, 1.0))
        assert Interval(0.2, 0.3).contains_interval(Interval(0.2, 0.3))

    def test_overlaps(self):
        assert Interval(0.0, 0.5).overlaps(Interval(0.5, 1.0))  # closed ends touch
        assert not Interval(0.0, 0.4).overlaps(Interval(0.5, 1.0))

    def test_full_interval_constant(self):
        assert FULL_INTERVAL == Interval(0.0, 1.0)
        assert 0.33 in FULL_INTERVAL

    def test_ordering_is_lexicographic(self):
        assert Interval(0.1, 0.2) < Interval(0.2, 0.3)

    def test_repr(self):
        assert "point" in repr(Interval.point(0.5))
        assert "Interval(0.1, 0.2)" == repr(Interval(0.1, 0.2))


class TestIntervalProperties:
    @given(unit, unit, unit)
    def test_around_always_contains_center(self, center, delta, probe):
        interval = Interval.around(center, delta)
        assert center in interval

    @given(unit, unit)
    def test_containment_is_reflexive(self, a, b):
        low, high = min(a, b), max(a, b)
        interval = Interval(low, high)
        assert interval.contains_interval(interval)

    @given(unit, unit, unit, unit)
    def test_containment_implies_overlap(self, a, b, c, d):
        outer = Interval(min(a, b), max(a, b))
        inner = Interval(min(c, d), max(c, d))
        if outer.contains_interval(inner):
            assert outer.overlaps(inner)

    @given(unit, unit)
    def test_width_nonnegative(self, a, b):
        interval = Interval(min(a, b), max(a, b))
        assert interval.width >= 0.0

"""Tests for chain matching counts and the exact chain sampler."""

import numpy as np
import pytest

from repro.core import (
    ChainSpec,
    chain_expected_cracks,
    chain_matching_count,
    space_from_chain,
)
from repro.core.chain import _upward_flows
from repro.errors import NotAChainError, SimulationError
from repro.graph.permanent import count_matchings
from repro.simulation import sample_chain_cracks, simulate_chain_expected_cracks


CHAINS = [
    ChainSpec((5, 3), (3, 2), (3,)),
    ChainSpec((2, 1), (1, 0), (2,)),
    ChainSpec((3, 3, 2), (1, 1, 1), (3, 2)),
    ChainSpec((4,), (4,), ()),
    ChainSpec((2, 2, 2), (2, 2, 2), (0, 0)),
]


class TestUpwardFlows:
    def test_figure_4a(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        assert _upward_flows(spec) == (1,)

    def test_point_valued_chain_has_zero_flow(self):
        spec = ChainSpec((2, 2, 2), (2, 2, 2), (0, 0))
        assert _upward_flows(spec) == (0, 0)

    def test_flows_telescoping(self):
        spec = ChainSpec((3, 3, 2), (1, 1, 1), (3, 2))
        flows = _upward_flows(spec)
        # d_i of the lemma equals the forced upward flow.
        assert flows == spec.correct_to_upper()


class TestChainMatchingCount:
    @pytest.mark.parametrize("spec", CHAINS)
    def test_matches_permanent(self, spec):
        space = space_from_chain(spec)
        assert chain_matching_count(spec) == pytest.approx(count_matchings(space))

    def test_single_group(self):
        import math

        spec = ChainSpec((5,), (5,), ())
        assert chain_matching_count(spec) == math.factorial(5)


class TestExactChainSampler:
    @pytest.mark.parametrize("spec", CHAINS[:3])
    def test_mean_matches_lemma6(self, spec):
        space = space_from_chain(spec)
        mean, stderr = simulate_chain_expected_cracks(
            space, 3000, rng=np.random.default_rng(5)
        )
        assert mean == pytest.approx(
            chain_expected_cracks(spec), abs=max(4 * stderr, 0.02)
        )

    def test_raw_and_rao_blackwell_agree(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        space = space_from_chain(spec)
        raw_mean, raw_se = simulate_chain_expected_cracks(
            space, 3000, rng=np.random.default_rng(6), rao_blackwell=False
        )
        rb_mean, rb_se = simulate_chain_expected_cracks(
            space, 3000, rng=np.random.default_rng(6)
        )
        assert raw_mean == pytest.approx(rb_mean, abs=4 * (raw_se + rb_se))
        assert rb_se <= raw_se  # Rao-Blackwellization can only help

    def test_samples_are_bounded(self):
        spec = ChainSpec((3, 3), (2, 2), (2,))
        space = space_from_chain(spec)
        samples = sample_chain_cracks(
            space, 500, rng=np.random.default_rng(7), rao_blackwell=False
        )
        assert ((0 <= samples) & (samples <= space.n)).all()

    def test_non_chain_rejected(self, bigmart_space_h):
        with pytest.raises(NotAChainError):
            sample_chain_cracks(bigmart_space_h, 10, rng=np.random.default_rng(0))

    def test_invalid_sample_count(self):
        spec = ChainSpec((2, 2), (1, 1), (2,))
        space = space_from_chain(spec)
        with pytest.raises(SimulationError):
            sample_chain_cracks(space, 0)

    def test_agrees_with_mcmc(self):
        from repro.simulation import simulate_expected_cracks

        spec = ChainSpec((4, 4, 3), (2, 1, 2), (3, 3))
        space = space_from_chain(spec)
        exact_mean, exact_se = simulate_chain_expected_cracks(
            space, 3000, rng=np.random.default_rng(8)
        )
        mcmc = simulate_expected_cracks(
            space,
            runs=4,
            samples_per_run=400,
            rng=np.random.default_rng(9),
            method="gibbs",
            rao_blackwell=True,
        )
        assert exact_mean == pytest.approx(mcmc.mean, abs=max(4 * mcmc.std, 0.05))

"""Unit tests for synthetic generators and calibrated benchmarks."""

import pytest

from repro.data import FrequencyGroups, FrequencyProfile
from repro.datasets import (
    BENCHMARK_NAMES,
    BENCHMARK_SPECS,
    database_from_profile,
    generate_benchmark_profile,
    load_benchmark,
    load_benchmark_database,
    profile_from_group_counts,
    random_database,
    zipf_profile,
)
from repro.datasets.benchmarks import BenchmarkSpec
from repro.errors import DataError


class TestProfileFromGroupCounts:
    def test_exact_structure(self, rng):
        profile = profile_from_group_counts([10, 20, 30], [2, 1, 3], 100, rng=rng)
        groups = FrequencyGroups.from_source(profile)
        assert groups.frequencies_sorted == (0.1, 0.2, 0.3)
        assert groups.sizes == (2, 1, 3)

    def test_duplicate_counts_rejected(self, rng):
        with pytest.raises(DataError):
            profile_from_group_counts([10, 10], [1, 1], 100, rng=rng)

    def test_counts_must_fit(self, rng):
        with pytest.raises(DataError):
            profile_from_group_counts([101], [1], 100, rng=rng)

    def test_item_ids_shuffled_but_stable_domain(self, rng):
        profile = profile_from_group_counts([10, 20], [3, 3], 100, rng=rng)
        assert profile.domain == frozenset(range(1, 7))


class TestDatabaseFromProfile:
    def test_counts_realized_exactly(self, rng):
        profile = FrequencyProfile({1: 5, 2: 9, 3: 2}, 10)
        db = database_from_profile(profile, rng=rng)
        assert db.n_transactions == 10
        for item in profile.domain:
            assert db.item_count(item) == profile.item_count(item)

    def test_no_empty_transactions(self, rng):
        profile = FrequencyProfile({1: 6, 2: 6}, 10)
        db = database_from_profile(profile, rng=rng)
        assert all(len(t) >= 1 for t in db)

    def test_too_sparse_rejected(self, rng):
        profile = FrequencyProfile({1: 2}, 10)
        with pytest.raises(DataError):
            database_from_profile(profile, rng=rng)

    def test_occurrence_guard(self, rng):
        profile = FrequencyProfile({1: 5, 2: 5}, 5)
        with pytest.raises(DataError, match="occurrences"):
            database_from_profile(profile, rng=rng, max_occurrences=3)


class TestRandomDatabase:
    def test_shape(self, rng):
        db = random_database(10, 50, density=0.3, rng=rng)
        assert db.n_transactions == 50
        assert db.domain == frozenset(range(1, 11))
        assert all(t for t in db)

    def test_invalid_density(self, rng):
        with pytest.raises(DataError):
            random_database(10, 50, density=0.0, rng=rng)


class TestZipfProfile:
    def test_monotone_rank_frequencies(self, rng):
        profile = zipf_profile(20, 1000, rng=rng)
        counts = sorted(profile.counts.values(), reverse=True)
        assert counts[0] == 800  # max_frequency * m
        assert counts[-1] >= 1
        assert all(a >= b for a, b in zip(counts, counts[1:]))


class TestCalibratedBenchmarks:
    def test_names(self):
        assert set(BENCHMARK_NAMES) == {
            "accidents",
            "chess",
            "connect",
            "mushroom",
            "pumsb",
            "retail",
        }

    @pytest.mark.parametrize("name", ["chess", "mushroom", "connect"])
    def test_exact_discrete_statistics(self, name):
        dataset = load_benchmark(name)
        spec = dataset.spec
        groups = FrequencyGroups.from_source(dataset.profile)
        assert len(dataset.profile.domain) == spec.n_items
        assert dataset.profile.n_transactions == spec.n_transactions
        assert len(groups) == spec.n_groups
        assert groups.n_singletons == spec.n_singletons

    @pytest.mark.parametrize("name", ["chess", "mushroom", "connect", "accidents"])
    def test_gap_statistics_close_to_figure9(self, name):
        dataset = load_benchmark(name)
        spec = dataset.spec
        stats = FrequencyGroups.from_source(dataset.profile).gap_statistics()
        assert stats.median == pytest.approx(spec.gap_median, rel=0.25)
        assert stats.mean == pytest.approx(spec.gap_mean, rel=0.1)
        assert stats.maximum == pytest.approx(spec.gap_max, rel=0.05)

    def test_deterministic_by_default(self):
        a = load_benchmark("chess")
        b = load_benchmark("chess")
        assert a.profile == b.profile

    def test_seed_override_changes_instance(self):
        a = load_benchmark("chess", seed=1)
        b = load_benchmark("chess", seed=2)
        assert a.profile != b.profile

    def test_unknown_name(self):
        with pytest.raises(DataError, match="known"):
            load_benchmark("does-not-exist")

    def test_materialized_database(self):
        db = load_benchmark_database("chess")
        spec = BENCHMARK_SPECS["chess"]
        assert db.n_transactions == spec.n_transactions
        assert len(db.domain) == spec.n_items

    def test_spec_validation(self):
        with pytest.raises(DataError):
            BenchmarkSpec(
                name="bad",
                n_items=10,
                n_transactions=100,
                n_groups=11,
                n_singletons=0,
                gap_mean=0.1,
                gap_median=0.1,
                gap_min=0.1,
                gap_max=0.1,
            )
        with pytest.raises(DataError):
            BenchmarkSpec(
                name="bad",
                n_items=10,
                n_transactions=100,
                n_groups=9,
                n_singletons=9,
                gap_mean=0.1,
                gap_median=0.1,
                gap_min=0.1,
                gap_max=0.1,
            )  # one non-singleton group would hold a single item

    def test_generate_with_fresh_rng(self, rng):
        spec = BENCHMARK_SPECS["chess"]
        profile = generate_benchmark_profile(spec, rng)
        assert len(profile.domain) == spec.n_items

"""Unit tests for permanents, matching enumeration and the direct method."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beliefs import ignorant_belief, point_belief
from repro.errors import GraphError, InfeasibleMatchingError
from repro.graph import (
    ExplicitMappingSpace,
    crack_distribution,
    enumerate_consistent_matchings,
    expected_cracks_direct,
    permanent,
    space_from_frequencies,
)
from repro.graph.permanent import count_matchings


class TestPermanent:
    def test_identity(self):
        assert permanent(np.eye(4)) == pytest.approx(1.0)

    def test_all_ones_is_factorial(self):
        for n in range(1, 7):
            assert permanent(np.ones((n, n))) == pytest.approx(math.factorial(n))

    def test_empty_matrix(self):
        assert permanent(np.zeros((0, 0))) == pytest.approx(1.0)

    def test_2x2(self):
        assert permanent(np.array([[1.0, 2.0], [3.0, 4.0]])) == pytest.approx(10.0)

    def test_singular_but_positive_permanent(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert permanent(matrix) == pytest.approx(2.0)

    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            permanent(np.ones((2, 3)))

    def test_size_guard(self):
        with pytest.raises(GraphError, match="infeasible"):
            permanent(np.ones((23, 23)))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(1, 6))
    def test_matches_definition_on_random_matrices(self, seed, n):
        from itertools import permutations

        rng = np.random.default_rng(seed)
        matrix = rng.random((n, n))
        expected = sum(
            math.prod(matrix[i, perm[i]] for i in range(n))
            for perm in permutations(range(n))
        )
        assert permanent(matrix) == pytest.approx(expected)


class TestEnumeration:
    def test_counts_match_permanent(self, bigmart_space_h):
        count = sum(1 for _ in enumerate_consistent_matchings(bigmart_space_h))
        assert count == pytest.approx(count_matchings(bigmart_space_h))

    def test_yields_valid_matchings(self, bigmart_space_h):
        for assignment in enumerate_consistent_matchings(bigmart_space_h):
            assert sorted(assignment) == list(range(6))
            assert all(bigmart_space_h.is_edge(i, j) for i, j in enumerate(assignment))

    def test_size_guard(self):
        freqs = {i: i / 20 for i in range(1, 14)}
        space = space_from_frequencies(ignorant_belief(freqs), freqs)
        with pytest.raises(GraphError, match="infeasible"):
            list(enumerate_consistent_matchings(space))


class TestDirectMethod:
    def test_ignorant_gives_one(self, bigmart_frequencies):
        space = space_from_frequencies(
            ignorant_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert expected_cracks_direct(space) == pytest.approx(1.0)

    def test_point_valued_gives_g(self, bigmart_frequencies):
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert expected_cracks_direct(space) == pytest.approx(3.0)

    def test_bigmart_h(self, bigmart_space_h):
        # Ground truth for belief h, from exhaustive enumeration.
        assert expected_cracks_direct(space=bigmart_space_h) == pytest.approx(1.8125)

    def test_agrees_with_enumeration(self, bigmart_space_h):
        distribution = crack_distribution(bigmart_space_h)
        from_dist = sum(k * p for k, p in enumerate(distribution))
        assert expected_cracks_direct(bigmart_space_h) == pytest.approx(from_dist)

    def test_staircase_all_forced(self, staircase_space):
        assert expected_cracks_direct(staircase_space) == pytest.approx(4.0)

    def test_infeasible_raises(self):
        space = ExplicitMappingSpace(
            items=(1, 2),
            anonymized=("a", "b"),
            adjacency=[[0], [0]],
            true_partner_of=[0, 1],
        )
        with pytest.raises(InfeasibleMatchingError):
            expected_cracks_direct(space)
        with pytest.raises(InfeasibleMatchingError):
            crack_distribution(space)


class TestCrackDistribution:
    def test_is_a_distribution(self, bigmart_space_h):
        distribution = crack_distribution(bigmart_space_h)
        assert distribution.sum() == pytest.approx(1.0)
        assert (distribution >= 0).all()

    def test_no_n_minus_one_cracks(self, bigmart_frequencies):
        # A permutation can never have exactly n-1 fixed points.
        space = space_from_frequencies(
            ignorant_belief(bigmart_frequencies), bigmart_frequencies
        )
        distribution = crack_distribution(space)
        assert distribution[space.n - 1] == pytest.approx(0.0)

    def test_two_blocks_distribution(self, two_blocks_space):
        # Matchings: {1,2} permuted freely (2 ways), {3,4} freely (2 ways),
        # plus the (2',3) edge never usable: 4 matchings, cracks 0,2,2,4.
        distribution = crack_distribution(two_blocks_space)
        assert distribution[0] == pytest.approx(0.25)
        assert distribution[2] == pytest.approx(0.5)
        assert distribution[4] == pytest.approx(0.25)

"""Unit tests for powerset (pairwise) belief refinement (Section 8.2)."""

import pytest

from repro.anonymize import anonymize
from repro.beliefs import ignorant_belief, point_belief, uniform_width_belief
from repro.core import o_estimate
from repro.data import TransactionDatabase
from repro.errors import BeliefError, DomainMismatchError
from repro.extensions import PairBelief, refine_with_pair_beliefs


@pytest.fixture
def correlated_db():
    """Items 1-4 share frequency 0.5 but have distinctive pair supports.

    Pair supports: {1,2}=0.5, {1,3}={2,3}=0.3, {3,4}=0.2, {1,4}={2,4}=0.
    """
    windows = {
        1: range(0, 5),
        2: range(0, 5),
        3: range(2, 7),
        4: range(5, 10),
        5: range(7, 10),
        6: range(8, 10),
    }
    transactions = [
        {item for item, window in windows.items() if t in window} for t in range(10)
    ]
    return TransactionDatabase(transactions, domain=range(1, 7))


@pytest.fixture
def released(correlated_db, rng):
    return anonymize(correlated_db, rng=rng)


class TestPairBelief:
    def test_construction(self):
        belief = PairBelief({(1, 2): (0.4, 0.6), frozenset({3, 4}): 0.0})
        assert len(belief) == 2
        assert (2, 1) in belief
        assert belief[(1, 2)].low == 0.4

    def test_non_pair_rejected(self):
        with pytest.raises(BeliefError):
            PairBelief({(1, 2, 3): (0, 1)})
        with pytest.raises(BeliefError):
            PairBelief({(1, 1): (0, 1)})

    def test_empty_rejected(self):
        with pytest.raises(BeliefError):
            PairBelief({})

    def test_compliancy(self):
        belief = PairBelief({frozenset({1, 2}): (0.4, 0.6), frozenset({3, 4}): (0.8, 1.0)})
        truth = {frozenset({1, 2}): 0.5, frozenset({3, 4}): 0.0}
        assert belief.compliancy(truth) == pytest.approx(0.5)


class TestRefinement:
    def test_pair_knowledge_sharpens_the_graph(self, correlated_db, released):
        # Items 1-4 share frequency 0.5: indistinguishable at item level.
        item_belief = point_belief(correlated_db.frequencies())
        pair_belief = PairBelief(
            {
                frozenset({1, 2}): (0.45, 0.55),  # "1 and 2 co-occur half the time"
                frozenset({3, 4}): (0.15, 0.25),  # "3 and 4 rarely do"
            }
        )
        space = refine_with_pair_beliefs(released, item_belief, pair_belief)
        item_level = o_estimate_space_value(released, item_belief)
        refined = o_estimate(space).value
        assert refined > item_level

    def test_perfect_pair_knowledge_cracks_the_block(self, correlated_db, released):
        item_belief = point_belief(correlated_db.frequencies())
        pair_belief = PairBelief(
            {
                frozenset({1, 2}): 0.5,
                frozenset({3, 4}): 0.2,
                frozenset({2, 4}): 0.0,
            }
        )
        space = refine_with_pair_beliefs(released, item_belief, pair_belief)
        # Pairwise consistency must separate {1,2} from {3,4} within the
        # frequency-0.5 group: the anonymized pair with support 0.5 can
        # only be {1', 2'}.
        for item in (1, 2):
            index = space.item_index(item)
            assert space.outdegree(index) <= 2
            assert space.has_true_edge(index)

    def test_compliant_pairs_keep_true_edges(self, correlated_db, released):
        item_belief = uniform_width_belief(correlated_db.frequencies(), 0.05)
        pair_belief = PairBelief(
            {
                frozenset({1, 2}): (0.4, 0.6),
                frozenset({1, 3}): (0.25, 0.35),
                frozenset({3, 4}): (0.15, 0.25),
            }
        )
        space = refine_with_pair_beliefs(released, item_belief, pair_belief)
        for i in range(space.n):
            assert space.has_true_edge(i)

    def test_wrong_pair_guess_protects_items(self, correlated_db, released):
        item_belief = point_belief(correlated_db.frequencies())
        # A wrong guess matching no observed 0.5-group pair support:
        # every candidate loses its witness and the true edge dies.
        pair_belief = PairBelief({frozenset({1, 2}): (0.05, 0.15)})
        space = refine_with_pair_beliefs(released, item_belief, pair_belief)
        one = space.item_index(1)
        assert not space.has_true_edge(one)

    def test_unconstrained_items_untouched(self, correlated_db, released):
        item_belief = ignorant_belief(correlated_db.domain)
        pair_belief = PairBelief({frozenset({1, 2}): (0.45, 0.55)})
        space = refine_with_pair_beliefs(released, item_belief, pair_belief)
        five = space.item_index(5)
        assert space.outdegree(five) == 6  # nothing known about item 5

    def test_domain_checks(self, correlated_db, released):
        with pytest.raises(DomainMismatchError):
            refine_with_pair_beliefs(
                released,
                point_belief({1: 0.5}),
                PairBelief({frozenset({1, 2}): (0, 1)}),
            )
        with pytest.raises(DomainMismatchError):
            refine_with_pair_beliefs(
                released,
                point_belief(correlated_db.frequencies()),
                PairBelief({frozenset({1, 99}): (0, 1)}),
            )


def o_estimate_space_value(released, belief):
    from repro.graph import space_from_anonymized

    return o_estimate(space_from_anonymized(belief, released)).value

"""Unit tests for the frequent-set mining substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymize import anonymize
from repro.data import TransactionDatabase
from repro.datasets import random_database
from repro.errors import DataError
from repro.mining import (
    FrequentItemset,
    apriori,
    fp_growth,
    itemsets_equal_up_to_renaming,
    support,
)


@pytest.fixture
def classic_db():
    """The textbook 5-transaction basket example."""
    return TransactionDatabase(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )


def as_set(itemsets):
    return {(fi.items, round(fi.support, 6)) for fi in itemsets}


class TestSupport:
    def test_singleton(self, classic_db):
        assert support(classic_db, ["bread"]) == pytest.approx(0.8)

    def test_pair(self, classic_db):
        assert support(classic_db, ["beer", "diapers"]) == pytest.approx(0.6)

    def test_absent_itemset(self, classic_db):
        assert support(classic_db, ["beer", "eggs", "cola"]) == 0.0

    def test_empty_rejected(self, classic_db):
        with pytest.raises(DataError):
            support(classic_db, [])


class TestApriori:
    def test_classic_result(self, classic_db):
        result = apriori(classic_db, min_support=0.6)
        expected = {
            frozenset({"bread"}): 0.8,
            frozenset({"milk"}): 0.8,
            frozenset({"diapers"}): 0.8,
            frozenset({"beer"}): 0.6,
            frozenset({"bread", "milk"}): 0.6,
            frozenset({"bread", "diapers"}): 0.6,
            frozenset({"milk", "diapers"}): 0.6,
            frozenset({"beer", "diapers"}): 0.6,
        }
        assert {fi.items: fi.support for fi in result} == pytest.approx(expected)

    def test_sorted_by_support(self, classic_db):
        result = apriori(classic_db, min_support=0.4)
        supports = [fi.support for fi in result]
        assert supports == sorted(supports, reverse=True)

    def test_max_size_cap(self, classic_db):
        result = apriori(classic_db, min_support=0.2, max_size=1)
        assert all(len(fi) == 1 for fi in result)

    def test_threshold_one(self, classic_db):
        result = apriori(classic_db, min_support=1.0)
        assert result == []

    def test_invalid_support(self, classic_db):
        with pytest.raises(DataError):
            apriori(classic_db, min_support=0.0)

    def test_downward_closure(self, classic_db):
        from itertools import combinations

        result = apriori(classic_db, min_support=0.4)
        frequent = {fi.items for fi in result}
        for itemset in frequent:
            for size in range(1, len(itemset)):
                for subset in combinations(itemset, size):
                    assert frozenset(subset) in frequent


class TestFPGrowth:
    def test_agrees_with_apriori_classic(self, classic_db):
        for min_support in [0.2, 0.4, 0.6, 0.8]:
            assert as_set(apriori(classic_db, min_support)) == as_set(
                fp_growth(classic_db, min_support)
            )

    def test_invalid_support(self, classic_db):
        with pytest.raises(DataError):
            fp_growth(classic_db, min_support=1.5)

    def test_max_size_cap(self, classic_db):
        result = fp_growth(classic_db, min_support=0.2, max_size=2)
        assert all(len(fi) <= 2 for fi in result)
        full = {fi.items for fi in fp_growth(classic_db, min_support=0.2)}
        capped = {fi.items for fi in result}
        assert capped == {s for s in full if len(s) <= 2}

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_agrees_with_apriori_random(self, seed):
        rng = np.random.default_rng(seed)
        db = random_database(8, 40, density=0.35, rng=rng)
        assert as_set(apriori(db, 0.25)) == as_set(fp_growth(db, 0.25))

    def test_supports_are_correct(self, classic_db):
        for fi in fp_growth(classic_db, 0.2):
            assert fi.support == pytest.approx(support(classic_db, fi.items))


class TestAnonymizationPreservesPatterns:
    def test_renamed_itemsets_identical(self, classic_db, rng):
        released = anonymize(classic_db, rng=rng)
        original = apriori(classic_db, 0.4)
        mined = apriori(released.database, 0.4)
        mapping = {
            item: released.mapping.anonymize_item(item) for item in classic_db.domain
        }
        assert itemsets_equal_up_to_renaming(original, mined, mapping)

    def test_detects_mismatch(self, classic_db, rng):
        released = anonymize(classic_db, rng=rng)
        original = apriori(classic_db, 0.4)
        mined = apriori(released.database, 0.6)  # different threshold: differs
        mapping = {
            item: released.mapping.anonymize_item(item) for item in classic_db.domain
        }
        assert not itemsets_equal_up_to_renaming(original, mined, mapping)


class TestFrequentItemset:
    def test_validation(self):
        with pytest.raises(DataError):
            FrequentItemset(support=0.5, items=frozenset())
        with pytest.raises(DataError):
            FrequentItemset(support=1.5, items=frozenset({1}))

    def test_container_protocol(self):
        fi = FrequentItemset(support=0.5, items=frozenset({1, 2}))
        assert len(fi) == 2
        assert 1 in fi
        assert 3 not in fi

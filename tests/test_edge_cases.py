"""Edge-case hardening: degenerate domains, boundary parameters, misuse."""

import pytest

from repro.beliefs import ignorant_belief, point_belief, uniform_width_belief
from repro.core import alpha_max, o_estimate
from repro.data import FrequencyProfile, TransactionDatabase
from repro.errors import RecipeError
from repro.graph import (
    crack_distribution,
    expected_cracks_direct,
    space_from_frequencies,
)
from repro.recipe import assess_risk
from repro.simulation import GibbsAssignmentSampler, MatchingSampler, simulate_expected_cracks


class TestSingleItemDomain:
    def test_everything_degenerates_gracefully(self):
        freqs = {42: 0.5}
        space = space_from_frequencies(point_belief(freqs), freqs)
        assert space.n == 1
        assert o_estimate(space).value == pytest.approx(1.0)
        assert expected_cracks_direct(space) == pytest.approx(1.0)
        assert list(crack_distribution(space)) == pytest.approx([0.0, 1.0])

    def test_simulation_on_single_item(self, rng):
        freqs = {42: 0.5}
        space = space_from_frequencies(point_belief(freqs), freqs)
        result = simulate_expected_cracks(space, runs=2, samples_per_run=10, rng=rng)
        assert result.mean == pytest.approx(1.0)

    def test_recipe_on_single_item(self):
        profile = FrequencyProfile({1: 5}, 10)
        report = assess_risk(profile, tolerance=1.0, delta=0.1)
        assert report.disclose
        with pytest.raises(RecipeError):
            assess_risk(profile, tolerance=0.0)  # needs delta, single group


class TestSingleFrequencyGroup:
    """All items share one frequency: maximal camouflage."""

    @pytest.fixture
    def flat_space(self):
        freqs = {i: 0.5 for i in range(1, 9)}
        return space_from_frequencies(point_belief(freqs), freqs)

    def test_oe_is_one(self, flat_space):
        assert o_estimate(flat_space).value == pytest.approx(1.0)

    def test_gibbs_sampler_handles_k1(self, flat_space, rng):
        sampler = GibbsAssignmentSampler(flat_space, rng=rng)
        moves = sampler.sweep(5)
        assert moves == 0  # no boundaries to resample
        assert sampler.check_consistency()
        assert sampler.rao_blackwell_cracks() == pytest.approx(1.0)

    def test_swap_sampler_mixes_within_group(self, flat_space, rng):
        sampler = MatchingSampler(flat_space, rng=rng)
        accepted = sampler.sweep(10)
        assert accepted > 0
        assert sampler.check_consistency()

    def test_alpha_max_flat(self, flat_space, rng):
        # OE(alpha) <= 1 always: any tolerance above 1/n admits alpha = 1.
        assert alpha_max(flat_space, 0.2, rng=rng) == pytest.approx(1.0)


class TestBoundaryFrequencies:
    def test_frequency_one_and_zero_items(self):
        profile = FrequencyProfile({1: 10, 2: 0, 3: 5}, 10)
        freqs = profile.frequencies()
        belief = uniform_width_belief(freqs, 0.1)
        space = space_from_frequencies(belief, freqs)
        assert space.compliant_mask().all()
        assert o_estimate(space).value > 0

    def test_ignorant_on_extreme_frequencies(self):
        freqs = {1: 0.0, 2: 1.0}
        space = space_from_frequencies(ignorant_belief(freqs), freqs)
        assert o_estimate(space).value == pytest.approx(1.0)


class TestLargeButDegenerate:
    def test_all_items_identical_counts_large(self, rng):
        profile = FrequencyProfile({i: 100 for i in range(1, 2001)}, 1000)
        report = assess_risk(profile, tolerance=0.01, delta=0.001)
        # g = 1 <= 0.01 * 2000: disclose at the point-valued stage.
        assert report.disclose

    def test_two_group_gibbs_large(self, rng):
        counts = {i: 100 for i in range(1, 501)}
        counts.update({i: 200 for i in range(501, 1001)})
        profile = FrequencyProfile(counts, 1000)
        freqs = profile.frequencies()
        belief = uniform_width_belief(freqs, 0.15)  # spans both groups
        space = space_from_frequencies(belief, freqs)
        result = simulate_expected_cracks(
            space, runs=2, samples_per_run=20, rng=rng, method="gibbs",
            rao_blackwell=True,
        )
        # Two groups of 500 mutually confusable: E[X] ~ OE ~ small.
        assert result.mean < 10


class TestMisuse:
    def test_space_requires_matching_domains(self, bigmart_frequencies):
        belief = ignorant_belief([1, 2, 3])
        from repro.errors import DomainMismatchError

        with pytest.raises(DomainMismatchError):
            space_from_frequencies(belief, bigmart_frequencies)

    def test_count_cracks_requires_full_assignment(self, bigmart_space_h):
        # A partial assignment simply scores the pairs it names.
        partial = [bigmart_space_h.true_partner(i) for i in range(3)]
        assert bigmart_space_h.count_cracks(partial) == 3

    def test_transaction_database_rejects_non_iterable_rows(self):
        with pytest.raises(TypeError):
            TransactionDatabase([1, 2, 3])

"""Deadline, admission-control and degradation tests for the service.

The soak suite (run in CI under a hard wall-clock ``timeout``): HTTP
deadline semantics (200 + ``"partial": true`` anytime answers, 503 when
nothing was ready), bounded admission with 429 load shedding, the
failure-streak circuit breaker, truncated-body handling, checkpointed
batches that survive a crash mid-write, and graceful SIGTERM drain with
a deadline-bearing request in flight — the behaviours documented in
``docs/robustness.md``.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.data import FrequencyProfile, TransactionDatabase, write_fimi
from repro.errors import RecipeError, ReproError
from repro.io import profile_to_json
from repro.service import (
    AdmissionController,
    AdmissionTimeout,
    AssessmentEngine,
    CircuitBreaker,
    CircuitOpenError,
    FaultRule,
    InjectedCrash,
    QueueFullError,
    injected_faults,
    make_server,
)
from repro.service import faults as faults_module
from repro.service.metrics import ServiceMetrics

pytestmark = pytest.mark.soak


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Every test must leave the process-wide injector uninstalled."""
    yield
    assert faults_module.current() is None, "test leaked an installed fault injector"
    faults_module.uninstall()


@pytest.fixture
def profile():
    """A 20-item profile that drives the recipe to the alpha stage."""
    return FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)


@pytest.fixture
def live_server():
    server = make_server(host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _post_error(url, payload):
    """POST expecting an HTTP error; returns (status, body, headers)."""
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url, payload)
    with excinfo.value as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmissionController:
    def test_admits_up_to_max_inflight_then_sheds(self):
        metrics = ServiceMetrics()
        controller = AdmissionController(max_inflight=2, max_queue=0, metrics=metrics)
        with contextlib.ExitStack() as stack:
            stack.enter_context(controller.admitted())
            stack.enter_context(controller.admitted())
            assert controller.inflight() == 2
            assert metrics.gauge("inflight") == 2
            with pytest.raises(QueueFullError) as excinfo:
                with controller.admitted():
                    pass
            assert excinfo.value.retry_after >= 1.0
            assert metrics.counter("shed") == 1
        assert controller.inflight() == 0
        assert metrics.gauge("inflight") == 0

    def test_wait_is_bounded_by_the_caller_deadline(self):
        metrics = ServiceMetrics()
        controller = AdmissionController(max_inflight=1, max_queue=4, metrics=metrics)
        with controller.admitted():
            start = time.monotonic()
            with pytest.raises(AdmissionTimeout):
                with controller.admitted(timeout_seconds=0.05):
                    pass
            assert time.monotonic() - start < 2.0
        # the queue gauge must not leak the timed-out waiter
        assert controller.queued() == 0
        assert metrics.gauge("queued") == 0

    def test_released_slot_wakes_a_waiter(self):
        controller = AdmissionController(max_inflight=1, max_queue=4)
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with controller.admitted():
                entered.set()
                release.set()

        with controller.admitted():
            thread = threading.Thread(target=holder)
            thread.start()
            time.sleep(0.05)
            assert not entered.is_set()
            assert controller.queued() == 1
        assert release.wait(timeout=5)
        thread.join(timeout=5)
        assert controller.inflight() == 0

    def test_errors_are_repro_errors(self):
        assert issubclass(QueueFullError, ReproError)
        assert issubclass(AdmissionTimeout, ReproError)


class TestCircuitBreaker:
    def _failing(self):
        raise OSError("injected")

    def test_opens_after_failure_streak_and_fast_fails(self):
        clock = FakeClock()
        metrics = ServiceMetrics()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=30.0, clock=clock, metrics=metrics
        )
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(self._failing)
        assert breaker.state == "open"
        assert metrics.counter("breaker_opened") == 1
        assert metrics.gauge("breaker_state") == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert excinfo.value.retry_after >= 1.0
        assert metrics.counter("breaker_fast_fail") == 1

    def test_repro_errors_do_not_feed_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)

        def rejected():
            raise RecipeError("the request's own fault")

        for _ in range(5):
            with pytest.raises(RecipeError):
                breaker.call(rejected)
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
        with pytest.raises(OSError):
            breaker.call(self._failing)
        assert breaker.state == "open"
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.call(lambda: 42) == 42
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
        with pytest.raises(OSError):
            breaker.call(self._failing)
        clock.advance(10.0)
        with pytest.raises(OSError):
            breaker.call(self._failing)
        assert breaker.state == "open"


class TestDeadlineHTTP:
    """Acceptance: anytime answers over HTTP, under deterministic faults."""

    def test_over_budget_request_answers_200_partial(self, live_server, profile):
        server, url = live_server
        payload = {
            "profile": profile_to_json(profile),
            "tolerance": 0.1,
            "deadline_seconds": 0.1,
        }
        # Burn the wall-clock at the third budget poll: the first two
        # guard pre-bound stages; the third sits past the O-estimate, so
        # the recipe degrades to INCONCLUSIVE instead of failing.
        with injected_faults(
            [
                FaultRule(
                    site="budget.poll",
                    action="delay",
                    delay_seconds=0.3,
                    times=1,
                    after=2,
                )
            ]
        ):
            status, answer = _post(f"{url}/assess", payload)
        assert status == 200
        assert answer["partial"] is True
        assert not answer["cached"]
        assessment = answer["assessment"]
        assert assessment["decision"] == "INCONCLUSIVE"
        partial = assessment["partial_estimate"]
        assert partial["reason"] == "deadline"
        import math

        assert math.isfinite(partial["value"])
        assert math.isfinite(partial["std_error"])
        assert server.engine.metrics.counter("partial_results") == 1

        # The partial was never cached: without the deadline the same
        # question now computes the full answer from scratch.
        status, full = _post(
            f"{url}/assess", {"profile": profile_to_json(profile), "tolerance": 0.1}
        )
        assert status == 200
        assert full["partial"] is False
        assert not full["cached"]
        assert full["assessment"]["decision"] != "INCONCLUSIVE"

    def test_nothing_ready_yet_is_503_with_retry_after(self, live_server, profile):
        server, url = live_server
        payload = {
            "profile": profile_to_json(profile),
            "tolerance": 0.1,
            "deadline_seconds": 0.1,
        }
        # The very first poll guards a stage with no bounded estimate
        # yet, so exhaustion there has nothing to degrade to.
        with injected_faults(
            [
                FaultRule(
                    site="budget.poll", action="delay", delay_seconds=0.3, times=1
                )
            ]
        ):
            status, body, headers = _post_error(f"{url}/assess", payload)
        assert status == 503
        assert body["error"]["type"] == "BudgetExceeded"
        assert "deadline expired" in body["error"]["message"]
        assert headers["Retry-After"] == "1"

    def test_deadline_validation(self, live_server, profile):
        _, url = live_server
        for bad in (0, -1.0, 10**9):
            status, body, _ = _post_error(
                f"{url}/assess",
                {
                    "profile": profile_to_json(profile),
                    "tolerance": 0.1,
                    "deadline_seconds": bad,
                },
            )
            assert status == 400, bad
            assert "deadline" in body["error"]["message"]

    def test_generous_deadline_is_a_normal_answer(self, live_server, profile):
        _, url = live_server
        status, answer = _post(
            f"{url}/assess",
            {
                "profile": profile_to_json(profile),
                "tolerance": 0.1,
                "deadline_seconds": 60,
            },
        )
        assert status == 200
        assert answer["partial"] is False
        # and the full answer WAS cached for the next client
        status, again = _post(
            f"{url}/assess", {"profile": profile_to_json(profile), "tolerance": 0.1}
        )
        assert again["cached"]


class TestRequestValidationHTTP:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"tolerance": -0.5},
            {"runs": 0},
            {"seed": -3},
            {"seed": 2**64},
        ],
        ids=["negative-tolerance", "zero-runs", "negative-seed", "huge-seed"],
    )
    def test_out_of_range_parameters_are_structured_400s(
        self, live_server, profile, overrides
    ):
        _, url = live_server
        payload = {"profile": profile_to_json(profile), "tolerance": 0.1}
        payload.update(overrides)
        status, body, _ = _post_error(f"{url}/assess", payload)
        assert status == 400
        assert body["status"] == 400
        assert body["error"]["type"] == "ValueError"


class TestTruncatedBody:
    def _raw_exchange(self, port, head: bytes, body: bytes, close_early: bool):
        with socket.create_connection(("127.0.0.1", port), timeout=5) as sock:
            sock.sendall(head + body)
            if close_early:
                sock.shutdown(socket.SHUT_WR)
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        status = int(response.split(b" ", 2)[1])
        payload = json.loads(response.split(b"\r\n\r\n", 1)[1])
        return status, payload

    def _head(self, length: int) -> bytes:
        return (
            b"POST /assess HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(length).encode() + b"\r\n"
            b"Connection: close\r\n\r\n"
        )

    def test_truncated_body_is_a_400_not_a_parse_of_the_prefix(self, live_server):
        server, _ = live_server
        body = b'{"tolerance": 0.1}'
        status, payload = self._raw_exchange(
            server.server_port, self._head(len(body) + 500), body, close_early=True
        )
        assert status == 400
        assert "truncated request body" in payload["error"]["message"]

    def test_body_delivered_in_short_reads_is_assembled(self, live_server, profile):
        server, _ = live_server
        body = json.dumps(
            {"profile": profile_to_json(profile), "tolerance": 0.1}
        ).encode()
        split = len(body) // 2
        with socket.create_connection(
            ("127.0.0.1", server.server_port), timeout=5
        ) as sock:
            sock.sendall(self._head(len(body)) + body[:split])
            time.sleep(0.1)  # force the server to see a short first read
            sock.sendall(body[split:])
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        assert b" 200 " in response.split(b"\r\n", 1)[0]


class TestAdmissionHTTP:
    def test_queue_overflow_sheds_with_429(self, profile):
        server = make_server(host="127.0.0.1", port=0, max_inflight=1, max_queue=0)
        url = f"http://127.0.0.1:{server.server_port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            results = []

            def slow_request():
                results.append(
                    _post(
                        f"{url}/assess",
                        {"profile": profile_to_json(profile), "tolerance": 0.1},
                    )
                )

            with injected_faults(
                [
                    FaultRule(
                        site="engine.compute",
                        action="delay",
                        delay_seconds=0.6,
                        times=1,
                    )
                ]
            ):
                holder = threading.Thread(target=slow_request)
                holder.start()
                time.sleep(0.2)  # let it occupy the only compute slot
                status, body, headers = _post_error(
                    f"{url}/assess",
                    {"profile": profile_to_json(profile), "tolerance": 0.2},
                )
                holder.join(timeout=10)
            assert status == 429
            assert body["error"]["type"] == "QueueFullError"
            assert int(headers["Retry-After"]) >= 1
            assert server.engine.metrics.counter("shed") == 1
            assert results and results[0][0] == 200
            assert server.engine.metrics.gauge("inflight") == 0
            assert server.engine.metrics.gauge("queued") == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_queued_deadline_request_times_out_with_503(self, profile):
        server = make_server(host="127.0.0.1", port=0, max_inflight=1, max_queue=4)
        url = f"http://127.0.0.1:{server.server_port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            results = []

            def slow_request():
                results.append(
                    _post(
                        f"{url}/assess",
                        {"profile": profile_to_json(profile), "tolerance": 0.1},
                    )
                )

            with injected_faults(
                [
                    FaultRule(
                        site="engine.compute",
                        action="delay",
                        delay_seconds=0.8,
                        times=1,
                    )
                ]
            ):
                holder = threading.Thread(target=slow_request)
                holder.start()
                time.sleep(0.2)
                status, body, headers = _post_error(
                    f"{url}/assess",
                    {
                        "profile": profile_to_json(profile),
                        "tolerance": 0.2,
                        "deadline_seconds": 0.15,
                    },
                )
                holder.join(timeout=10)
            assert status == 503
            assert body["error"]["type"] == "AdmissionTimeout"
            assert "Retry-After" in headers
            assert results and results[0][0] == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestBreakerHTTP:
    def test_failure_streak_opens_then_half_open_recovers(self):
        clock = FakeClock()
        metrics = ServiceMetrics()
        engine = AssessmentEngine(
            metrics=metrics,
            breaker=CircuitBreaker(
                failure_threshold=2, cooldown_seconds=30.0, clock=clock, metrics=metrics
            ),
        )
        server = make_server(host="127.0.0.1", port=0, engine=engine)
        url = f"http://127.0.0.1:{server.server_port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            def payload(k):
                # distinct questions, so nothing is served from cache
                return {
                    "profile": profile_to_json(
                        FrequencyProfile({i: 40 * i + k for i in range(1, 21)}, 1000)
                    ),
                    "tolerance": 0.1,
                }

            with injected_faults(
                [FaultRule(site="engine.compute", action="error", times=2)]
            ):
                for k in (0, 1):
                    status, _, _ = _post_error(f"{url}/assess", payload(k))
                    assert status == 500
            assert metrics.gauge("breaker_state") == 1  # open
            status, body, headers = _post_error(f"{url}/assess", payload(2))
            assert status == 503
            assert body["error"]["type"] == "CircuitOpenError"
            assert int(headers["Retry-After"]) >= 1
            assert metrics.counter("breaker_fast_fail") == 1
            # cooldown elapses -> half-open probe succeeds -> closed again
            clock.advance(30.0)
            status, answer = _post(f"{url}/assess", payload(3))
            assert status == 200 and answer["partial"] is False
            assert metrics.gauge("breaker_state") == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestBatchCheckpointCrash:
    def _write_manifest(self, tmp_path):
        datasets = []
        for k in range(3):
            db = TransactionDatabase(
                [[1, 2], [2, 3], [1, 2, 3], [3], [1, 2 + k]] * 4
            )
            path = tmp_path / f"data{k}.dat"
            write_fimi(db, path)
            datasets.append({"fimi": str(path), "name": f"q{k}"})
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps(
                {"defaults": {"tolerance": 0.05, "runs": 3}, "datasets": datasets}
            )
        )
        return str(manifest)

    def test_crash_mid_checkpoint_resumes_to_identical_output(self, tmp_path, capsys):
        from repro.cli import batch_main

        manifest = self._write_manifest(tmp_path)
        ckpt = tmp_path / "ckpt"
        reference = tmp_path / "reference.jsonl"
        assert batch_main([manifest, "--output", str(reference)]) == 0

        # Crash the process while writing the second job's checkpoint.
        with injected_faults(
            [FaultRule(site="checkpoint.write", action="crash", times=1, after=1)]
        ):
            with pytest.raises(InjectedCrash):
                batch_main(
                    [manifest, "--checkpoint", str(ckpt), "--workers", "1",
                     "--output", str(tmp_path / "crashed.jsonl")]
                )
        surviving = list(ckpt.glob("*.json"))
        assert len(surviving) == 1  # job q0 was durably checkpointed

        resumed_out = tmp_path / "resumed.jsonl"
        assert (
            batch_main(
                [manifest, "--checkpoint", str(ckpt), "--resume",
                 "--output", str(resumed_out)]
            )
            == 0
        )
        assert "resumed 1 job(s)" in capsys.readouterr().err

        want = [json.loads(line) for line in reference.read_text().splitlines()]
        got = [json.loads(line) for line in resumed_out.read_text().splitlines()]
        assert [r["name"] for r in got] == ["q0", "q1", "q2"]
        assert got[0].get("resumed") is True
        assert [r["assessment"] for r in got] == [r["assessment"] for r in want]
        assert [r["fingerprint"] for r in got] == [r["fingerprint"] for r in want]


class TestSigtermDrain:
    def test_sigterm_drains_deadline_bearing_request(self, tmp_path, profile):
        """SIGTERM mid-request: the in-flight deadline-bearing answer is
        still delivered before the process exits 0 (satellite 3)."""
        schedule = tmp_path / "faults.json"
        schedule.write_text(
            json.dumps(
                {
                    "rules": [
                        {
                            "site": "engine.compute",
                            "action": "delay",
                            "delay_seconds": 0.8,
                            "times": 1,
                        }
                    ]
                }
            )
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        with subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.cli import serve_main; "
                "raise SystemExit(serve_main(['--port', '0', '--grace', '5', "
                f"'--faults', {str(schedule)!r}]))",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        ) as process:
            banner = process.stdout.readline()
            assert "listening on http://" in banner
            port = int(banner.rsplit(":", 1)[1])
            responses = []

            def request():
                responses.append(
                    _post(
                        f"http://127.0.0.1:{port}/assess",
                        {
                            "profile": profile_to_json(profile),
                            "tolerance": 0.1,
                            "deadline_seconds": 30,
                        },
                    )
                )

            client = threading.Thread(target=request)
            client.start()
            time.sleep(0.3)  # the request is now sleeping in the engine
            process.send_signal(signal.SIGTERM)
            client.join(timeout=10)
            out, err = process.communicate(timeout=15)
        assert process.returncode == 0, (out, err)
        assert "shutting down" in out
        assert responses, "the in-flight request was dropped on SIGTERM"
        status, answer = responses[0]
        assert status == 200
        assert answer["partial"] is False
        assert answer["assessment"]["decision"] != "INCONCLUSIVE"


class TestChaosSoak:
    """A bounded end-to-end chaos run: kill -9 under live load, recover,
    and prove nothing broke (docs/robustness.md, "Chaos testing")."""

    def test_seeded_chaos_run_survives_verification(self, tmp_path):
        from repro.service.chaos import run_chaos

        result = run_chaos(
            tmp_path / "chaos",
            seed=3,
            duration_seconds=6.0,
            connections=4,
            profiles=10,
        )
        assert result.report.ok, result.report.to_json()
        assert result.delivered.kills >= 3
        assert result.record["supervisor"]["restarts"] >= result.delivered.kills
        assert result.record["client"]["requests"] > 0
        # the record replays: same seed, same schedule digest
        from repro.service.chaos import generate_schedule, schedule_digest

        assert result.record["schedule_digest"] == schedule_digest(
            generate_schedule(3, 6.0, 2)
        )

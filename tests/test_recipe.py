"""Unit tests for the Assess-Risk recipe (Figure 8)."""

import numpy as np
import pytest

from repro.data import FrequencyProfile
from repro.errors import RecipeError
from repro.recipe import Decision, assess_risk


class TestEarlyDisclose:
    def test_point_valued_stage(self):
        # 3 frequency groups over 100 items: g/n = 0.03 <= tau.
        counts = {i: 10 for i in range(1, 41)}
        counts.update({i: 20 for i in range(41, 81)})
        counts.update({i: 30 for i in range(81, 101)})
        profile = FrequencyProfile(counts, 100)
        report = assess_risk(profile, tolerance=0.05)
        assert report.decision is Decision.DISCLOSE_POINT_VALUED
        assert report.disclose
        assert report.g == 3
        assert report.interval_estimate is None
        assert report.alpha_max is None

    def test_interval_stage(self):
        # Distinct but tightly packed frequencies: g = n (point-valued
        # fails), but median-gap intervals blur everything together.
        profile = FrequencyProfile({i: 50 + i for i in range(1, 21)}, 1000)
        report = assess_risk(profile, tolerance=0.4)
        assert report.decision is Decision.DISCLOSE_INTERVAL
        assert report.g == 20
        assert report.interval_estimate is not None
        assert report.interval_estimate.within_tolerance(0.4)

    def test_alpha_stage(self):
        # Well-separated frequencies: even interval beliefs crack items.
        profile = FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)
        report = assess_risk(profile, tolerance=0.1, rng=np.random.default_rng(0))
        assert report.decision is Decision.ALPHA_BOUND
        assert not report.disclose
        assert report.alpha_max is not None
        assert 0.0 <= report.alpha_max < 1.0


class TestRecipeMechanics:
    def test_accepts_transaction_database(self, bigmart_db):
        report = assess_risk(bigmart_db, tolerance=0.5)
        assert report.g == 3
        assert report.decision is Decision.DISCLOSE_POINT_VALUED

    def test_delta_override(self):
        profile = FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)
        wide = assess_risk(profile, tolerance=0.1, delta=0.5)
        assert wide.decision is Decision.DISCLOSE_INTERVAL  # huge intervals: safe

    def test_delta_default_is_median_gap(self):
        profile = FrequencyProfile({1: 10, 2: 20, 3: 40}, 100)
        report = assess_risk(profile, tolerance=0.0, delta=None)
        assert report.delta == pytest.approx(0.15)

    def test_invalid_tolerance(self, bigmart_db):
        with pytest.raises(RecipeError):
            assess_risk(bigmart_db, tolerance=-0.2)

    def test_single_group_needs_explicit_delta(self):
        profile = FrequencyProfile({1: 10, 2: 10}, 100)
        with pytest.raises(RecipeError):
            assess_risk(profile, tolerance=0.0)
        report = assess_risk(profile, tolerance=0.0, delta=0.1)
        assert report.decision is Decision.ALPHA_BOUND

    def test_summary_mentions_decision(self):
        profile = FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)
        report = assess_risk(profile, tolerance=0.1, rng=np.random.default_rng(0))
        text = report.summary()
        assert "alpha_max" in text
        assert "decision" in text

    def test_alpha_max_respects_tolerance_semantics(self):
        profile = FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)
        loose = assess_risk(profile, tolerance=0.3, rng=np.random.default_rng(1))
        tight = assess_risk(profile, tolerance=0.05, rng=np.random.default_rng(1))
        if loose.decision is Decision.ALPHA_BOUND and tight.decision is Decision.ALPHA_BOUND:
            assert loose.alpha_max >= tight.alpha_max

"""Fault-injection, crash-safety and concurrency tests for the service layer.

Everything here is marked ``faults`` (run separately in CI with a hard
timeout); it exercises the failure semantics documented in
``docs/service.md``: atomic disk writes, single-flight deduplication,
retry/timeout in the pool, and graceful server shutdown.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.data import FrequencyProfile, TransactionDatabase, write_fimi
from repro.errors import FormatError, ReproError
from repro.io import SCHEMA_VERSION, load_json, profile_to_json, save_json
from repro.recipe import assess_risk
from repro.service import (
    AssessmentCache,
    AssessmentEngine,
    AssessmentParams,
    FaultInjector,
    FaultRule,
    InjectedCrash,
    injected_faults,
    load_schedule,
    make_server,
    request_fingerprint,
    run_batch,
)
from repro.service import faults as faults_module

pytestmark = pytest.mark.faults


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Every test must leave the process-wide injector uninstalled."""
    yield
    assert faults_module.current() is None, "test leaked an installed fault injector"
    faults_module.uninstall()


@pytest.fixture
def profile():
    """A 20-item profile that drives the recipe to the alpha stage."""
    return FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)


def tiny_assessment(tolerance=0.5):
    return assess_risk(
        FrequencyProfile({i: 10 * i for i in range(1, 6)}, 100), tolerance
    )


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ReproError):
            FaultRule(site="x", action="explode")
        with pytest.raises(ReproError):
            FaultRule(site="x", exception="SegFault")
        with pytest.raises(ReproError):
            FaultRule(site="x", times=0)
        with pytest.raises(ReproError):
            FaultRule(site="x", after=-1)
        with pytest.raises(ReproError):
            FaultRule(site="x", action="delay", delay_seconds=-0.1)

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(FormatError):
            FaultRule.from_json({"site": "x", "frequency": 2})
        with pytest.raises(FormatError):
            FaultRule.from_json({"action": "error"})

    def test_from_json_defaults(self):
        rule = FaultRule.from_json({"site": "cache.*"})
        assert rule.action == "error" and rule.times == 1 and rule.after == 0


class TestInjector:
    def test_deterministic_times_and_after(self):
        injector = FaultInjector(
            [FaultRule(site="s", action="error", times=2, after=1)]
        )
        injector.fire("s")  # skipped by 'after'
        with pytest.raises(OSError):
            injector.fire("s")
        with pytest.raises(OSError):
            injector.fire("s")
        injector.fire("s")  # 'times' exhausted
        assert injector.fired("s") == 2
        injector.reset()
        injector.fire("s")
        with pytest.raises(OSError):
            injector.fire("s")

    def test_pattern_matching_and_unmatched_sites(self):
        injector = FaultInjector([FaultRule(site="cache.write.*", action="error")])
        injector.fire("cache.read")  # no match, no fire
        with pytest.raises(OSError):
            injector.fire("cache.write.replace")
        assert [event.site for event in injector.events] == ["cache.write.replace"]

    def test_delay_rule_sleeps_then_continues(self):
        injector = FaultInjector(
            [FaultRule(site="s", action="delay", delay_seconds=0.05, times=1)]
        )
        start = time.perf_counter()
        injector.fire("s")
        assert time.perf_counter() - start >= 0.04
        start = time.perf_counter()
        injector.fire("s")  # exhausted: no sleep
        assert time.perf_counter() - start < 0.04

    def test_crash_rule_raises_base_exception(self):
        injector = FaultInjector([FaultRule(site="s", action="crash")])
        with pytest.raises(InjectedCrash):
            injector.fire("s")
        # and InjectedCrash is NOT an Exception: 'except Exception' can't eat it
        assert not issubclass(InjectedCrash, Exception)

    def test_install_is_exclusive(self):
        with injected_faults([FaultRule(site="s")]):
            with pytest.raises(ReproError):
                faults_module.install(FaultInjector([]))
        assert faults_module.current() is None

    def test_load_schedule_roundtrip(self, tmp_path):
        schedule = {
            "rules": [
                {"site": "engine.compute", "action": "error", "times": 3},
                {"site": "pool.*", "action": "delay", "delay_seconds": 0.01},
            ]
        }
        path = tmp_path / "faults.json"
        save_json(schedule, path)
        injector = load_schedule(path)
        assert len(injector.rules) == 2
        assert injector.rules[0].times == 3
        with pytest.raises(FormatError):
            load_schedule({"rules": "nope"})

    def test_fault_point_is_noop_without_injector(self):
        faults_module.fault_point("anything")  # must not raise


class TestCrashSafeWrites:
    def test_crash_before_replace_preserves_old_value(self, tmp_path):
        """The acceptance scenario: a write killed mid-flight can only
        yield the old value or a clean miss — never a parse error."""
        old = tiny_assessment(0.5)
        new = tiny_assessment(0.9)
        cache = AssessmentCache(directory=tmp_path)
        cache.put("aa", old)
        with injected_faults([FaultRule(site="cache.write.replace", action="crash")]):
            with pytest.raises(InjectedCrash):
                cache.put("aa", new)
        # the crashed write left an orphan temp, not a torn artifact
        assert list(tmp_path.glob("*.tmp"))
        assert load_json(tmp_path / "aa.json")  # still valid JSON
        # a post-crash process sweeps the orphan and serves the old value
        revived = AssessmentCache(directory=tmp_path)
        assert revived.stats()["invalidated"] == 1
        assert revived.get("aa") == old
        assert not list(tmp_path.glob("*.tmp"))

    def test_crash_on_fresh_write_is_clean_miss(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path)
        with injected_faults([FaultRule(site="cache.write.replace", action="crash")]):
            with pytest.raises(InjectedCrash):
                cache.put("bb", tiny_assessment())
        assert not (tmp_path / "bb.json").exists()
        revived = AssessmentCache(directory=tmp_path)
        assert revived.stats()["invalidated"] == 1  # the swept orphan
        assert revived.get("bb") is None  # clean miss, no parse error
        assert revived.stats()["misses"] == 1

    def test_crash_inside_temp_file_write(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path)
        with injected_faults([FaultRule(site="cache.write.tmp", action="crash")]):
            with pytest.raises(InjectedCrash):
                cache.put("cc", tiny_assessment())
        orphans = list(tmp_path.glob("*.tmp"))
        assert len(orphans) == 1 and orphans[0].read_text() == ""
        assert AssessmentCache(directory=tmp_path).recover_orphans() == 0  # init swept

    def test_write_error_is_tolerated_and_counted(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path)
        report = tiny_assessment()
        with injected_faults([FaultRule(site="cache.write.tmp", action="error")]):
            cache.put("dd", report)  # must NOT raise
        assert cache.stats()["write_errors"] == 1
        assert cache.get("dd") == report  # memory tier still serves
        assert not (tmp_path / "dd.json").exists()
        assert not list(tmp_path.glob("*.tmp"))  # failed write cleaned up
        cache.put("dd", report)  # disk healthy again
        assert AssessmentCache(directory=tmp_path).get("dd") == report

    def test_transient_read_error_does_not_invalidate(self, tmp_path):
        report = tiny_assessment()
        AssessmentCache(directory=tmp_path).put("ee", report)
        cache = AssessmentCache(directory=tmp_path)
        with injected_faults([FaultRule(site="cache.read", action="error")]):
            assert cache.get("ee") is None  # a miss...
        stats = cache.stats()
        assert stats["read_errors"] == 1 and stats["invalidated"] == 0
        assert (tmp_path / "ee.json").exists()  # ...but the artifact survives
        assert cache.get("ee") == report  # and is served once I/O recovers


class TestCorruptDiskEntries:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda text: text[: len(text) // 2],  # truncated mid-JSON
            lambda text: "{not json",  # garbage
            lambda text: json.dumps({"type": "something_else"}),  # wrong type
            lambda text: json.dumps(  # wrong shape: missing assessment keys
                {
                    "type": "cached_assessment",
                    "schema_version": SCHEMA_VERSION,
                    "fingerprint": "ff",
                    "assessment": {"type": "risk_assessment", "schema_version": SCHEMA_VERSION},
                }
            ),
        ],
        ids=["truncated", "garbage", "wrong-type", "wrong-shape"],
    )
    def test_bad_entry_is_clean_miss_and_invalidated(self, tmp_path, mutate):
        AssessmentCache(directory=tmp_path).put("ff", tiny_assessment())
        path = tmp_path / "ff.json"
        path.write_text(mutate(path.read_text()))
        cache = AssessmentCache(directory=tmp_path)
        assert cache.get("ff") is None  # never a parse error
        assert cache.stats()["invalidated"] == 1
        assert not path.exists()


class TestCacheConcurrency:
    def test_contains_consults_disk_tier(self, tmp_path):
        report = tiny_assessment()
        AssessmentCache(directory=tmp_path).put("aa", report)
        fresh = AssessmentCache(directory=tmp_path)
        assert "aa" in fresh  # disk tier, before any get()
        assert "zz" not in fresh
        # eviction from memory must not hide a persisted entry
        small = AssessmentCache(capacity=1, directory=tmp_path)
        small.put("k1", report)
        small.put("k2", report)
        assert small.stats()["evictions"] == 1
        assert "k1" in small and "k2" in small

    def test_clear_resets_stats(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path)
        cache.put("aa", tiny_assessment())
        cache.get("aa")
        cache.get("missing")
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1
        cache.clear(disk=True)
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["size"] == 0
        assert not list(tmp_path.glob("*.json"))
        assert cache.get("aa") is None

    def test_single_flight_coalesces_concurrent_computes(self):
        cache = AssessmentCache()
        report = tiny_assessment()
        calls = []
        barrier = threading.Barrier(6)
        results = []

        def compute():
            calls.append(1)
            time.sleep(0.1)
            return report

        def worker():
            barrier.wait()
            results.append(cache.get_or_compute("fp", compute))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1  # one compute served everyone
        assert all(value == report for value, _ in results)
        origins = sorted(origin for _, origin in results)
        assert origins.count("computed") == 1
        assert origins.count("coalesced") == 5
        assert cache.stats()["coalesced"] == 5

    def test_single_flight_leader_failure_propagates_once_each(self):
        cache = AssessmentCache()
        barrier = threading.Barrier(4)
        failures = []

        def compute():
            time.sleep(0.05)
            raise OSError("flaky backend")

        def worker():
            barrier.wait()
            try:
                cache.get_or_compute("fp", compute)
            except OSError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # depending on timing, late arrivals may lead their own flight and
        # fail on their own compute; everyone must see the error either way
        assert len(failures) == 4
        # and the failure must not poison the key for later callers
        report = tiny_assessment()
        value, origin = cache.get_or_compute("fp", lambda: report)
        assert value == report and origin == "computed"

    def test_engine_deduplicates_concurrent_identical_requests(self, profile):
        engine = AssessmentEngine()
        barrier = threading.Barrier(4)
        outcomes = []

        def worker():
            barrier.wait()
            outcomes.append(engine.assess(profile, 0.1))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert engine.metrics.counter("computed") == 1
        assert engine.metrics.counter("cache_hits") == 3
        assessments = {id(outcome.assessment) for outcome in outcomes}
        assert len({json.dumps(o.assessment.decision.name) for o in outcomes}) == 1
        assert len(assessments) == 1  # literally the same object, shared

    def test_concurrent_get_put_clear_never_tears_the_disk_tier(self, tmp_path):
        cache = AssessmentCache(capacity=8, directory=tmp_path)
        report = tiny_assessment()
        stop = time.monotonic() + 1.0
        errors = []

        def writer(worker_id):
            try:
                while time.monotonic() < stop:
                    for key in range(6):
                        cache.put(f"fp{key}", report)
            except Exception as exc:
                errors.append(f"writer[{worker_id}]: {exc!r}")

        def reader(worker_id):
            try:
                while time.monotonic() < stop:
                    for key in range(6):
                        value = cache.get(f"fp{key}")
                        assert value is None or value == report
            except Exception as exc:
                errors.append(f"reader[{worker_id}]: {exc!r}")

        def clearer():
            try:
                while time.monotonic() < stop:
                    cache.clear(disk=True)
                    time.sleep(0.01)
            except Exception as exc:
                errors.append(f"clearer: {exc!r}")

        threads = (
            [threading.Thread(target=writer, args=(i,)) for i in range(2)]
            + [threading.Thread(target=reader, args=(i,)) for i in range(2)]
            + [threading.Thread(target=clearer)]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert not list(tmp_path.glob("*.tmp"))  # no orphans under contention
        for path in tmp_path.glob("*.json"):
            payload = load_json(path)  # every survivor parses cleanly
            assert payload["type"] == "cached_assessment"


def _jobs(engine, profiles, tolerance=0.05):
    jobs = []
    for index, profile in enumerate(profiles):
        params = AssessmentParams(tolerance=tolerance)
        jobs.append((index, profile, params, request_fingerprint(profile, params)))
    return jobs


def small_profiles(count):
    return [
        FrequencyProfile({i: 30 * i + k for i in range(1, 16)}, 1000)
        for k in range(count)
    ]


class TestPoolFaults:
    def test_serial_path_retries_transient_failures(self, profile):
        engine = AssessmentEngine()
        requests = [(profile, AssessmentParams(tolerance=0.1))]
        with injected_faults(
            [FaultRule(site="engine.compute", action="error", times=1)]
        ) as injector:
            results = engine.assess_many(requests, workers=1)
        assert results[0].ok and results[0].attempts == 2
        assert engine.metrics.counter("retries") == 1
        assert injector.fired("engine.compute") == 1
        # retried output is byte-identical to an undisturbed run
        clean = AssessmentEngine().assess(profile, 0.1)
        assert results[0].assessment == clean.assessment

    def test_serial_path_does_not_retry_deterministic_errors(self):
        flat = FrequencyProfile({i: 50 for i in range(1, 6)}, 100)  # no gaps
        engine = AssessmentEngine()
        results = engine.assess_many(
            [(flat, AssessmentParams(tolerance=0.0))], workers=1
        )
        assert not results[0].ok
        assert "RecipeError" in results[0].error
        assert results[0].attempts == 1
        assert engine.metrics.counter("retries") == 0

    def test_serial_retries_exhausted_becomes_job_error(self, profile):
        engine = AssessmentEngine()
        with injected_faults(
            [FaultRule(site="engine.compute", action="error", times=None)]
        ):
            results = engine.assess_many(
                [(profile, AssessmentParams(tolerance=0.1))],
                workers=1,
                retries=2,
                backoff_seconds=0.001,
            )
        assert not results[0].ok and "OSError" in results[0].error
        assert results[0].attempts == 3  # 1 try + 2 retries

    def test_pool_retries_transient_worker_failures(self):
        engine = AssessmentEngine()
        jobs = _jobs(engine, small_profiles(3))
        with injected_faults([FaultRule(site="pool.job", action="error", times=1)]):
            results = run_batch(jobs, workers=1, backoff_seconds=0.001)
        assert [result.ok for result in results] == [True, True, True]
        assert results[0].attempts == 2  # first job failed once, was resubmitted
        assert results[1].attempts == 1 and results[2].attempts == 1

    def test_pool_job_timeout_is_an_error_not_a_hang(self):
        engine = AssessmentEngine()
        jobs = _jobs(engine, small_profiles(1))
        with injected_faults(
            [FaultRule(site="pool.job", action="delay", delay_seconds=0.6)]
        ):
            start = time.perf_counter()
            results = run_batch(jobs, workers=1, timeout_seconds=0.1)
        assert not results[0].ok
        assert "TimeoutError" in results[0].error
        # the batch returned promptly (pool drain may add the delay tail)
        assert time.perf_counter() - start < 5.0

    def test_worker_crash_fails_the_slot_not_the_batch(self):
        engine = AssessmentEngine()
        jobs = _jobs(engine, small_profiles(3))
        with injected_faults([FaultRule(site="pool.job", action="crash", times=1)]):
            results = run_batch(jobs, workers=1, backoff_seconds=0.001)
        errors = [result for result in results if not result.ok]
        assert len(errors) == 1 and "InjectedCrash" in errors[0].error
        assert sum(result.ok for result in results) == 2

    def test_batch_identical_json_under_transient_faults(self):
        """Acceptance: transient faults change nothing about the answers."""
        requests = [
            (profile, AssessmentParams(tolerance=0.05))
            for profile in small_profiles(4)
        ]
        baseline = AssessmentEngine().assess_many(requests, workers=1)
        assert all(result.ok for result in baseline)
        schedule = [FaultRule(site="engine.compute", action="error", times=1)]
        with injected_faults(schedule):
            serial = AssessmentEngine().assess_many(requests, workers=1)
        with injected_faults(schedule):
            parallel = AssessmentEngine().assess_many(
                requests, workers=4, backoff_seconds=0.001
            )
        for results in (serial, parallel):
            assert all(result.ok for result in results)
            assert [r.assessment for r in results] == [
                r.assessment for r in baseline
            ]


class TestBatchCLIFaults:
    def _write_manifest(self, tmp_path):
        datasets = []
        for k in range(3):
            db = TransactionDatabase(
                [[1, 2], [2, 3], [1, 2, 3], [3], [1, 2 + k]] * 4
            )
            path = tmp_path / f"data{k}.dat"
            write_fimi(db, path)
            datasets.append({"fimi": str(path), "name": f"q{k}"})
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps({"defaults": {"tolerance": 0.05, "runs": 3}, "datasets": datasets})
        )
        return str(manifest)

    def test_workers_1_and_4_identical_under_injected_faults(self, tmp_path, capsys):
        from repro.cli import batch_main

        manifest = self._write_manifest(tmp_path)
        schedule = tmp_path / "faults.json"
        schedule.write_text(
            json.dumps(
                {"rules": [{"site": "engine.compute", "action": "error", "times": 1}]}
            )
        )
        out_serial = tmp_path / "serial.jsonl"
        out_parallel = tmp_path / "parallel.jsonl"
        assert (
            batch_main([manifest, "--workers", "1", "--faults", str(schedule),
                        "--output", str(out_serial)])
            == 0
        )
        assert (
            batch_main([manifest, "--workers", "4", "--faults", str(schedule),
                        "--output", str(out_parallel)])
            == 0
        )
        serial = [json.loads(line) for line in out_serial.read_text().splitlines()]
        parallel = [json.loads(line) for line in out_parallel.read_text().splitlines()]
        assert [record["name"] for record in serial] == ["q0", "q1", "q2"]
        assert all("assessment" in record for record in serial)
        assert [record["assessment"] for record in serial] == [
            record["assessment"] for record in parallel
        ]
        assert "fault injection" in capsys.readouterr().err

    def test_bad_schedule_is_a_clean_cli_error(self, tmp_path, capsys):
        from repro.cli import batch_main

        manifest = self._write_manifest(tmp_path)
        schedule = tmp_path / "faults.json"
        schedule.write_text(json.dumps({"rules": [{"site": "x", "action": "warp"}]}))
        assert batch_main([manifest, "--faults", str(schedule)]) == 1
        assert "error" in capsys.readouterr().err


@pytest.fixture
def live_server():
    server = make_server(host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


class TestServerFaults:
    def test_internal_fault_returns_structured_500(self, live_server, profile):
        server, url = live_server
        payload = {"profile": profile_to_json(profile), "tolerance": 0.1}
        with injected_faults([FaultRule(site="engine.compute", action="error")]):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{url}/assess", payload)
        with excinfo.value as error:
            assert error.code == 500
            body = json.loads(error.read())
        assert body["status"] == 500
        assert body["error"]["type"] == "OSError"
        assert "injected" in body["error"]["message"]
        assert server.engine.metrics.counter("http_500") == 1
        # the fault was transient: the same request now succeeds
        status, answer = _post(f"{url}/assess", payload)
        assert status == 200 and not answer["cached"]

    def test_graceful_shutdown_drains_inflight_requests(self, profile):
        server = make_server(host="127.0.0.1", port=0)
        url = f"http://127.0.0.1:{server.server_port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        responses = []

        def slow_request():
            responses.append(
                _post(
                    f"{url}/assess",
                    {"profile": profile_to_json(profile), "tolerance": 0.1},
                )
            )

        with injected_faults(
            [FaultRule(site="engine.compute", action="delay", delay_seconds=0.4)]
        ):
            client = threading.Thread(target=slow_request)
            client.start()
            time.sleep(0.1)  # let the request reach the engine
            assert server.inflight_requests() == 1
            drained = server.shutdown_gracefully(grace_seconds=5.0)
            client.join(timeout=5)
        assert drained
        assert responses and responses[0][0] == 200
        assert server.inflight_requests() == 0
        assert server.engine.metrics.gauge("inflight_requests") == 0
        thread.join(timeout=5)

    def test_sigterm_shuts_repro_serve_down_cleanly(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        with subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.cli import serve_main; "
                "raise SystemExit(serve_main(['--port', '0', '--grace', '2']))",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        ) as process:
            banner = process.stdout.readline()
            assert "listening on http://" in banner
            port = int(banner.rsplit(":", 1)[1])
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=5
            ) as response:
                assert json.loads(response.read())["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=15)
        assert process.returncode == 0, (out, err)
        assert "shutting down" in out

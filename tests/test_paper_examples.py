"""Every worked example in the paper, reproduced end-to-end.

These tests pin the library to the paper's own numbers: the BigMart
example (Figures 1-3), Lemmas 1-4, the chain example of Figure 4(a), the
O-estimate counterexamples of Figure 6, and the Section 5.2 error table.
"""

import numpy as np
import pytest

from repro.anonymize import anonymize
from repro.beliefs import ignorant_belief, point_belief
from repro.core import (
    ChainSpec,
    chain_expected_cracks,
    chain_o_estimate,
    expected_cracks_ignorant,
    expected_cracks_point_valued,
    o_estimate,
    space_from_chain,
)
from repro.data import FrequencyGroups
from repro.graph import expected_cracks_direct, space_from_anonymized, space_from_frequencies
from repro.simulation import simulate_expected_cracks


class TestSection2BigMart:
    def test_anonymization_preserves_the_example(self, bigmart_db, rng):
        released = anonymize(bigmart_db, rng=rng)
        observed = sorted(released.observed_frequencies().values())
        assert observed == pytest.approx([0.3, 0.4, 0.5, 0.5, 0.5, 0.5])

    def test_consistency_rule_for_belief_h(self, belief_h, bigmart_frequencies):
        space = space_from_frequencies(belief_h, bigmart_frequencies)
        # "1' can be mapped to 1, 2, 3, 4 and 6; h(5) is the only range
        # not containing 0.5" -- the anonymized item at 0.5 connects to
        # every item except 5.
        one_prime = next(
            j for j, f in enumerate(space.observed) if f == 0.5
        )
        reachable = {
            space.items[i] for i in range(space.n) if space.is_edge(i, one_prime)
        }
        assert reachable == {1, 2, 3, 4, 6}

    def test_consistency_rule_for_2_prime(self, belief_h, bigmart_frequencies):
        # "the observed frequency of 2' is 0.4, and 2' can be mapped to
        # 1, 2, 4 and 5"
        space = space_from_frequencies(belief_h, bigmart_frequencies)
        two_prime = next(j for j, f in enumerate(space.observed) if f == 0.4)
        reachable = {
            space.items[i] for i in range(space.n) if space.is_edge(i, two_prime)
        }
        assert reachable == {1, 2, 4, 5}

    def test_frequency_groups_of_figure_3b(self, bigmart_frequencies):
        groups = FrequencyGroups(bigmart_frequencies)
        assert groups.groups[groups.group_index(1)] == (1, 3, 4, 6)
        assert groups.groups[groups.group_index(2)] == (2,)
        assert groups.groups[groups.group_index(5)] == (5,)


class TestSection3Extremes:
    def test_lemma_1(self):
        assert expected_cracks_ignorant(6) == 1.0

    def test_lemma_1_via_direct_method(self, bigmart_frequencies):
        space = space_from_frequencies(
            ignorant_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert expected_cracks_direct(space) == pytest.approx(1.0)

    def test_lemma_3_bigmart(self, bigmart_frequencies):
        assert expected_cracks_point_valued(bigmart_frequencies) == 3.0

    def test_singleton_groups_cracked_directly(self, bigmart_frequencies):
        # "When the group size is 1, the hacker comes up with the cracks
        # directly (e.g., 2' mapped to 2, and 5' mapped to 5)."
        from repro.extensions import surely_cracked_items

        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert sorted(surely_cracked_items(space)) == [2, 5]


class TestSection4Chain:
    def test_figure_4a_expected_cracks(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        assert chain_expected_cracks(spec) == pytest.approx(74 / 45)

    def test_figure_4a_term_by_term(self):
        # E(X) = sum_E1 1/5 + sum_E2 1/3 + sum_S1^1 (2/3)(1/5) + sum_S1^2 (1/3)(1/3)
        expected = 3 * (1 / 5) + 2 * (1 / 3) + 2 * (2 / 3) * (1 / 5) + 1 * (1 / 3) * (1 / 3)
        assert expected == pytest.approx(74 / 45)
        assert chain_expected_cracks(ChainSpec((5, 3), (3, 2), (3,))) == pytest.approx(
            expected
        )

    def test_lemma_5_is_the_k2_case(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        n1, n2, e1, e2, s1 = 5, 3, 3, 2, 3
        lemma5 = (
            e1 / n1
            + e2 / n2
            + (n1 - e1) * ((n1 - e1) / s1) * (1 / n1)
            + (n2 - e2) * ((n2 - e2) / s1) * (1 / n2)
        )
        assert chain_expected_cracks(spec) == pytest.approx(lemma5)


class TestSection5OEstimate:
    def test_figure_4a_o_estimate(self):
        assert chain_o_estimate(ChainSpec((5, 3), (3, 2), (3,))) == pytest.approx(
            197 / 120
        )

    def test_figure_6a_staircase(self, staircase_space):
        assert o_estimate(staircase_space).value == pytest.approx(25 / 12)
        assert o_estimate(staircase_space, propagate=True).value == pytest.approx(4.0)
        assert expected_cracks_direct(staircase_space) == pytest.approx(4.0)

    def test_figure_6b_irrelevant_edge(self, two_blocks_space):
        # The edge (2', 3) is in no perfect matching, yet the O-estimate
        # counts it toward item 3's outdegree.
        assert two_blocks_space.outdegree(2) == 3
        assert expected_cracks_direct(two_blocks_space) == pytest.approx(2.0)
        assert o_estimate(two_blocks_space).value < 2.0

    @pytest.mark.parametrize(
        "e,s,expected_error",
        [
            ((10, 10, 10), (20, 20), 1.54),
            ((5, 10, 10), (25, 20), 4.80),
            ((5, 10, 5), (25, 25), 8.33),
            ((5, 6, 5), (27, 27), 5.76),
            ((10, 20, 10), (15, 15), 7.27),
        ],
    )
    def test_section_5_2_table(self, e, s, expected_error):
        from repro.core import chain_percentage_error

        spec = ChainSpec((20, 30, 20), e, s)
        assert chain_percentage_error(spec) == pytest.approx(expected_error, abs=0.05)


class TestSection7Simulation:
    def test_simulation_validates_oe_on_the_chain_example(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        space = space_from_chain(spec)
        result = simulate_expected_cracks(
            space, runs=5, samples_per_run=300, rng=np.random.default_rng(2005)
        )
        # The paper's criterion: the O-estimate falls within one standard
        # deviation of the average simulated estimate (here we allow 3 for
        # the reduced sample budget).
        assert abs(result.mean - chain_o_estimate(spec)) <= max(3 * result.std, 0.15)


class TestEndToEndAnonymizedDatabase:
    def test_space_via_real_anonymization(self, bigmart_db, belief_h, rng):
        released = anonymize(bigmart_db, rng=rng)
        space = space_from_anonymized(belief_h, released)
        result = o_estimate(space)
        assert result.value == pytest.approx(1 / 6 + 1 / 5 + 1 / 4 + 1 / 5 + 1 / 2 + 1 / 4)
        assert expected_cracks_direct(space) == pytest.approx(1.8125)

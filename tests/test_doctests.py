"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.data.database
import repro.datasets.quest


@pytest.mark.parametrize(
    "module",
    [repro.data.database, repro.datasets.quest],
    ids=lambda module: module.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the docstring examples actually ran

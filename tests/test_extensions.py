"""Unit tests for the Section 8 extensions."""

import pytest

from repro.beliefs import point_belief
from repro.core import o_estimate
from repro.errors import DomainMismatchError, GraphError
from repro.extensions import (
    AttributeKnowledge,
    Between,
    Exactly,
    IdentifiedBlock,
    OneOf,
    Relation,
    Unknown,
    build_relational_space,
    itemset_identifications,
    surely_cracked_items,
)
from repro.graph import space_from_frequencies


@pytest.fixture
def car_relation():
    """The paper's Section 8.1 example: age, ethnicity, car-model."""
    return Relation(
        attributes=("age", "ethnicity", "car_model"),
        rows={
            "John": (42, "Chinese", "Toyota"),
            "Mary": (33, "Greek", "Volvo"),
            "Bob": (27, "Chinese", "Toyota"),
            "Alice": (33, "Greek", "Honda"),
        },
    )


@pytest.fixture
def paper_knowledge():
    """John is Chinese owning a Toyota; Mary's age is in [30, 35]; Bob unknown."""
    return AttributeKnowledge(
        {
            "John": {"ethnicity": Exactly("Chinese"), "car_model": Exactly("Toyota")},
            "Mary": {"age": Between(30, 35)},
        }
    )


class TestPredicates:
    def test_exactly(self):
        assert Exactly("Toyota").matches("Toyota")
        assert not Exactly("Toyota").matches("Volvo")

    def test_one_of(self):
        predicate = OneOf(["Toyota", "Honda"])
        assert predicate.matches("Honda")
        assert not predicate.matches("Volvo")

    def test_between(self):
        assert Between(30, 35).matches(33)
        assert not Between(30, 35).matches(42)
        assert not Between(30, 35).matches("not-a-number")

    def test_unknown(self):
        assert Unknown().matches(object())
        assert Unknown() == Unknown()


class TestRelation:
    def test_value_lookup(self, car_relation):
        assert car_relation.value("John", "car_model") == "Toyota"

    def test_unknown_attribute(self, car_relation):
        from repro.errors import DataError

        with pytest.raises(DataError):
            car_relation.value("John", "height")

    def test_row_arity_checked(self):
        from repro.errors import DataError

        with pytest.raises(DataError):
            Relation(attributes=("a", "b"), rows={"x": (1,)})

    def test_individuals_sorted(self, car_relation):
        assert car_relation.individuals == ("Alice", "Bob", "John", "Mary")


class TestRelationalSpace:
    def test_edges_follow_knowledge(self, car_relation, paper_knowledge):
        space = build_relational_space(car_relation, paper_knowledge)
        john = space.item_index("John")
        # John matches the two Chinese/Toyota rows (his own and Bob's).
        assert space.outdegree(john) == 2
        bob = space.item_index("Bob")
        assert space.outdegree(bob) == 4  # nothing known about Bob

    def test_mary_age_range(self, car_relation, paper_knowledge):
        space = build_relational_space(car_relation, paper_knowledge)
        mary = space.item_index("Mary")
        # Rows with age in [30, 35]: Mary's and Alice's.
        assert space.outdegree(mary) == 2

    def test_oe_applies_unchanged(self, car_relation, paper_knowledge):
        space = build_relational_space(car_relation, paper_knowledge)
        result = o_estimate(space)
        assert 0.0 < result.value <= 4.0

    def test_inconsistent_knowledge_rejected(self, car_relation):
        knowledge = AttributeKnowledge({"John": {"car_model": Exactly("Lada")}})
        with pytest.raises(DomainMismatchError):
            build_relational_space(car_relation, knowledge)

    def test_exact_knowledge_of_unique_row_cracks_it(self, car_relation):
        knowledge = AttributeKnowledge(
            {
                "Alice": {"car_model": Exactly("Honda")},
            }
        )
        space = build_relational_space(car_relation, knowledge)
        assert "Alice" in surely_cracked_items(space)


class TestItemsetIdentifications:
    def test_figure_6b_blocks(self, two_blocks_space):
        blocks = itemset_identifications(two_blocks_space)
        block_items = {block.items for block in blocks}
        assert block_items == {(1, 2), (3, 4)}
        for block in blocks:
            assert not block.is_sure_crack

    def test_staircase_all_singletons(self, staircase_space):
        blocks = itemset_identifications(staircase_space)
        assert all(block.is_sure_crack for block in blocks)
        assert surely_cracked_items(staircase_space) == ["a", "b", "c", "d"]

    def test_blocks_partition_domain(self, bigmart_space_h):
        blocks = itemset_identifications(bigmart_space_h)
        items = [item for block in blocks for item in block.items]
        assert sorted(items) == sorted(bigmart_space_h.items)

    def test_point_valued_blocks_are_frequency_groups(self, bigmart_frequencies):
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        blocks = itemset_identifications(space)
        block_items = {block.items for block in blocks}
        assert block_items == {(2,), (5,), (1, 3, 4, 6)}
        assert sorted(surely_cracked_items(space)) == [2, 5]

    def test_anonymized_side_matches(self, bigmart_frequencies):
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        for block in itemset_identifications(space):
            # anonymized partners of the block's items are exactly the
            # block's anonymized side
            expected = sorted(
                (space.anonymized[space.true_partner(space.item_index(i))] for i in block.items),
                key=repr,
            )
            assert sorted(block.anonymized, key=repr) == expected

    def test_edge_guard(self, bigmart_space_h):
        with pytest.raises(GraphError):
            itemset_identifications(bigmart_space_h, max_edges=2)

    def test_block_len(self):
        block = IdentifiedBlock(items=(1, 2), anonymized=("a", "b"))
        assert len(block) == 2

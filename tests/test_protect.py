"""Unit tests for the protection countermeasures."""

import pytest

from repro.beliefs import uniform_width_belief
from repro.core import expected_cracks_point_valued, o_estimate
from repro.data import FrequencyProfile
from repro.datasets import load_benchmark
from repro.errors import DataError
from repro.graph import space_from_frequencies
from repro.protect import bin_counts, protect_to_tolerance, quantile_bin, suppress_most_exposed


@pytest.fixture
def spread_profile():
    """20 items with well-separated counts — maximally identifiable."""
    return FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)


class TestBinCounts:
    def test_identity_at_width_one(self, spread_profile):
        release = bin_counts(spread_profile, 1)
        assert release.profile.counts == spread_profile.counts
        assert release.max_distortion == 0.0

    def test_groups_merge(self, spread_profile):
        release = bin_counts(spread_profile, 100)
        assert release.n_groups_after < release.n_groups_before
        assert expected_cracks_point_valued(
            release.profile.frequencies()
        ) < expected_cracks_point_valued(spread_profile.frequencies())

    def test_distortion_bounded_by_half_width(self, spread_profile):
        width = 100
        release = bin_counts(spread_profile, width)
        # Snapping moves a count by at most width/2 (plus the floor rule).
        assert release.max_distortion <= (width / 2 + width) / 1000

    def test_present_items_stay_present(self):
        profile = FrequencyProfile({1: 3, 2: 500}, 1000)
        release = bin_counts(profile, 50)
        assert release.profile.item_count(1) >= 1

    def test_invalid_width(self, spread_profile):
        with pytest.raises(DataError):
            bin_counts(spread_profile, 0)


class TestQuantileBin:
    def test_group_size_guarantee(self, spread_profile):
        release = quantile_bin(spread_profile, 4)
        from collections import Counter

        sizes = Counter(release.profile.counts.values())
        assert all(size >= 4 for size in sizes.values())

    def test_remainder_folded_into_last_block(self):
        profile = FrequencyProfile({i: 10 * i for i in range(1, 11)}, 1000)
        release = quantile_bin(profile, 3)  # 10 items -> blocks 3, 3, 4
        from collections import Counter

        sizes = sorted(Counter(release.profile.counts.values()).values())
        assert sizes == [3, 3, 4]

    def test_point_valued_risk_drops_to_group_count(self, spread_profile):
        release = quantile_bin(spread_profile, 5)
        g = expected_cracks_point_valued(release.profile.frequencies())
        assert g == 4.0  # 20 items in blocks of 5

    def test_identity_at_size_one(self, spread_profile):
        release = quantile_bin(spread_profile, 1)
        assert release.max_distortion == 0.0

    def test_invalid_size(self, spread_profile):
        with pytest.raises(DataError):
            quantile_bin(spread_profile, 0)


class TestSuppression:
    def test_reaches_tolerance(self, spread_profile):
        result = suppress_most_exposed(spread_profile, tolerance=0.3)
        assert result.residual_estimate <= 0.3 * 20
        assert result.n_suppressed > 0
        assert set(result.suppressed).isdisjoint(result.profile.domain)

    def test_no_op_when_already_safe(self):
        profile = FrequencyProfile({i: 100 for i in range(1, 21)}, 1000)
        result = suppress_most_exposed(profile, tolerance=0.5, delta=0.01)
        assert result.n_suppressed == 0

    def test_cap_enforced(self, spread_profile):
        with pytest.raises(DataError, match="cannot reach"):
            suppress_most_exposed(
                spread_profile, tolerance=0.0, max_suppressed_fraction=0.2
            )

    def test_suppresses_most_exposed_first(self, spread_profile):
        result = suppress_most_exposed(
            spread_profile, tolerance=0.5, batch_fraction=0.05
        )
        # Every item is in a singleton group (probability 1); any batch is
        # as exposed as any other, but the result must be consistent:
        assert result.residual_estimate <= 0.5 * 20


class TestPlanner:
    def test_quantile_plan(self, spread_profile):
        plan = protect_to_tolerance(spread_profile, tolerance=0.3, strategy="quantile")
        assert plan.estimate_after <= 0.3 * 20
        assert plan.estimate_before > plan.estimate_after
        assert plan.parameter >= 2
        assert "quantile" in plan.summary()

    def test_minimality_of_quantile_parameter(self, spread_profile):
        plan = protect_to_tolerance(spread_profile, tolerance=0.3, strategy="quantile")
        smaller = quantile_bin(spread_profile, plan.parameter - 1)
        # Recompute with the plan's fixed delta policy:
        from repro.data import FrequencyGroups

        delta = FrequencyGroups.from_source(spread_profile).median_gap()
        belief = uniform_width_belief(smaller.profile.frequencies(), delta)
        space = space_from_frequencies(belief, smaller.profile.frequencies())
        assert o_estimate(space).value > 0.3 * 20

    def test_bin_plan(self, spread_profile):
        plan = protect_to_tolerance(spread_profile, tolerance=0.3, strategy="bin")
        assert plan.estimate_after <= 0.3 * 20

    def test_suppress_plan(self, spread_profile):
        plan = protect_to_tolerance(spread_profile, tolerance=0.3, strategy="suppress")
        assert plan.estimate_after <= 0.3 * 20
        assert plan.parameter == plan.release.n_suppressed

    def test_already_safe_returns_identity(self):
        profile = FrequencyProfile({i: 100 for i in range(1, 21)}, 1000)
        plan = protect_to_tolerance(profile, tolerance=0.5, strategy="quantile", delta=0.01)
        assert plan.parameter == 1
        assert plan.estimate_after == plan.estimate_before

    def test_unknown_strategy(self, spread_profile):
        with pytest.raises(DataError):
            protect_to_tolerance(spread_profile, 0.3, strategy="noise")

    def test_infeasible_cap(self, spread_profile):
        with pytest.raises(DataError, match="meets tolerance"):
            protect_to_tolerance(
                spread_profile, tolerance=0.01, strategy="quantile", max_parameter=2
            )

    def test_on_calibrated_benchmark(self):
        profile = load_benchmark("chess").profile
        plan = protect_to_tolerance(profile, tolerance=0.1, strategy="quantile")
        assert plan.estimate_after <= 0.1 * len(profile.domain)
        # The protected release should keep reasonable fidelity.
        assert plan.release.mean_distortion < 0.05

"""Unit tests for cross-release linkage (the consortium hazard)."""

import numpy as np
import pytest

from repro.anonymize import anonymize
from repro.core import o_estimate
from repro.data import TransactionDatabase
from repro.datasets import random_database
from repro.errors import DataError, DomainMismatchError
from repro.extensions import build_linkage_space, linkage_risk, split_release


class TestSplitRelease:
    def test_halves_partition_transactions(self, rng):
        db = random_database(10, 100, density=0.4, rng=rng)
        release_a, release_b = split_release(db, fraction=0.3, rng=rng)
        assert release_a.database.n_transactions == 30
        assert release_b.database.n_transactions == 70

    def test_independent_mappings(self, rng):
        db = random_database(10, 100, density=0.4, rng=rng)
        release_a, release_b = split_release(db, rng=rng)
        same = sum(
            1
            for x in db.domain
            if release_a.mapping.anonymize_item(x) == release_b.mapping.anonymize_item(x)
        )
        assert same < 10  # two independent random renamings rarely agree

    def test_domains_preserved(self, rng):
        db = random_database(10, 100, density=0.4, rng=rng)
        release_a, release_b = split_release(db, rng=rng)
        assert release_a.mapping.original_domain == db.domain
        assert release_b.mapping.original_domain == db.domain

    def test_invalid_fraction(self, rng):
        db = random_database(5, 50, density=0.4, rng=rng)
        with pytest.raises(DataError):
            split_release(db, fraction=1.0, rng=rng)


class TestBuildLinkageSpace:
    def test_identical_releases_link_perfectly(self, rng):
        # Same transactions, different renamings: frequencies match
        # exactly, so every item links up to group camouflage.
        db = random_database(12, 300, density=0.35, rng=rng)
        release_a = anonymize(db, rng=rng)
        release_b = anonymize(db, rng=rng)
        space = build_linkage_space(release_a, release_b, width=1e-9)
        assert space.compliant_mask().all()
        estimate = o_estimate(space)
        from repro.core import expected_cracks_point_valued

        assert estimate.value == pytest.approx(
            expected_cracks_point_valued(db.frequencies())
        )

    def test_true_pairing_links_common_origin(self, rng):
        db = random_database(8, 200, density=0.4, rng=rng)
        release_a, release_b = split_release(db, rng=rng)
        space = build_linkage_space(release_a, release_b)
        for i, a in enumerate(space.items):
            x = release_a.mapping.deanonymize_item(a)
            b = space.anonymized[space.true_partner(i)]
            assert release_b.mapping.deanonymize_item(b) == x

    def test_wide_z_keeps_compliancy_high(self, rng):
        db = random_database(15, 600, density=0.3, rng=rng)
        release_a, release_b = split_release(db, rng=rng)
        space = build_linkage_space(release_a, release_b, z=4.0)
        # With a 4-sigma band almost every true pair stays compatible.
        assert space.compliant_mask().mean() > 0.85

    def test_domain_mismatch_rejected(self, rng):
        db_a = random_database(5, 50, density=0.4, rng=rng)
        db_b = random_database(6, 50, density=0.4, rng=rng)
        with pytest.raises(DomainMismatchError):
            build_linkage_space(anonymize(db_a, rng=rng), anonymize(db_b, rng=rng))


class TestLinkageRisk:
    def test_distinct_frequencies_are_linkable(self, rng):
        # Well-separated counts survive the split: high linkage.
        transactions = []
        for t in range(600):
            row = {i for i in range(1, 11) if t % (i + 2) == 0}
            transactions.append(row or {1})
        db = TransactionDatabase(transactions, domain=range(1, 11))
        result = linkage_risk(db, rng=np.random.default_rng(8))
        # The top (well-separated) items remain linkable; the crowded
        # long tail keeps some camouflage even here.
        assert result.fraction > 0.2

    def test_flat_frequencies_resist_linkage(self, rng):
        # Everything at the same frequency: camouflage survives splitting.
        db = random_database(30, 400, density=0.5, rng=rng)
        uniform = TransactionDatabase(
            [set(range(1, 31)) for _ in range(50)], domain=range(1, 31)
        )
        result = linkage_risk(uniform, rng=np.random.default_rng(9))
        assert result.value <= 1.5  # one expected crack, as in Lemma 1

    def test_returns_oestimate_result(self, rng):
        db = random_database(10, 200, density=0.4, rng=rng)
        result = linkage_risk(db, rng=rng)
        assert 0.0 <= result.fraction <= 1.0
        assert result.n == 10

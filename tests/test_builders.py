"""Unit tests for belief-function builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beliefs import (
    alpha_compliant_belief,
    from_sample_belief,
    ignorant_belief,
    interval_belief,
    point_belief,
    uniform_width_belief,
)
from repro.beliefs.interval import FULL_INTERVAL
from repro.data import FrequencyProfile
from repro.errors import BeliefError


class TestSimpleBuilders:
    def test_ignorant(self):
        beta = ignorant_belief([1, 2, 3])
        assert beta.is_ignorant
        assert beta[2] == FULL_INTERVAL

    def test_point_is_compliant(self, bigmart_frequencies):
        beta = point_belief(bigmart_frequencies)
        assert beta.is_point_valued
        assert beta.is_compliant_for(bigmart_frequencies)

    def test_interval_passthrough(self):
        beta = interval_belief({1: (0.1, 0.3)})
        assert beta[1].low == 0.1

    def test_uniform_width_compliant(self, bigmart_frequencies):
        beta = uniform_width_belief(bigmart_frequencies, 0.05)
        assert beta.is_compliant_for(bigmart_frequencies)
        assert beta[5].low == pytest.approx(0.25)
        assert beta[5].high == pytest.approx(0.35)


class TestAlphaCompliant:
    def test_target_alpha_achieved(self, bigmart_frequencies, rng):
        beta = alpha_compliant_belief(bigmart_frequencies, alpha=0.5, delta=0.05, rng=rng)
        assert beta.compliancy(bigmart_frequencies) == pytest.approx(0.5)

    def test_alpha_one_is_fully_compliant(self, bigmart_frequencies, rng):
        beta = alpha_compliant_belief(bigmart_frequencies, alpha=1.0, delta=0.05, rng=rng)
        assert beta.is_compliant_for(bigmart_frequencies)

    def test_alpha_zero_is_fully_noncompliant(self, bigmart_frequencies, rng):
        beta = alpha_compliant_belief(bigmart_frequencies, alpha=0.0, delta=0.05, rng=rng)
        assert beta.compliancy(bigmart_frequencies) == 0.0

    def test_explicit_noncompliant_items(self, bigmart_frequencies, rng):
        beta = alpha_compliant_belief(
            bigmart_frequencies, alpha=1.0, delta=0.05, rng=rng, noncompliant_items=[1, 2]
        )
        assert beta.compliant_items(bigmart_frequencies) == frozenset({3, 4, 5, 6})

    def test_explicit_items_outside_domain_rejected(self, bigmart_frequencies, rng):
        with pytest.raises(BeliefError):
            alpha_compliant_belief(
                bigmart_frequencies, alpha=1.0, delta=0.05, rng=rng, noncompliant_items=[99]
            )

    def test_invalid_alpha_rejected(self, bigmart_frequencies, rng):
        with pytest.raises(BeliefError):
            alpha_compliant_belief(bigmart_frequencies, alpha=1.5, delta=0.05, rng=rng)

    def test_wrong_guesses_still_hit_other_frequencies(self, bigmart_frequencies, rng):
        # Non-compliant intervals should still admit some observed
        # frequency so the mapping space stays non-degenerate.
        beta = alpha_compliant_belief(bigmart_frequencies, alpha=0.0, delta=0.02, rng=rng)
        observed = set(bigmart_frequencies.values())
        for item in beta:
            interval = beta[item]
            assert any(f in interval for f in observed)

    @settings(max_examples=25, deadline=None)
    @given(alpha=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 2**31))
    def test_compliancy_close_to_alpha(self, alpha, seed):
        frequencies = {i: i / 20 for i in range(1, 11)}
        rng = np.random.default_rng(seed)
        beta = alpha_compliant_belief(frequencies, alpha=alpha, delta=0.01, rng=rng)
        achieved = beta.compliancy(frequencies)
        assert abs(achieved - alpha) <= 0.5 / 10 + 1e-9  # rounding to whole items


class TestFromSample:
    def test_width_is_sampled_median_gap(self, rng):
        profile = FrequencyProfile({1: 10, 2: 20, 3: 40}, 100)
        beta = from_sample_belief(profile)
        # gaps 0.1 and 0.2 -> median delta 0.15; item 3 is not clamped
        assert beta[3].width == pytest.approx(0.3)
        assert beta[1].low == 0.0  # clamped at the bottom

    def test_mean_gap_variant(self):
        profile = FrequencyProfile({1: 10, 2: 20, 3: 50}, 100)
        beta = from_sample_belief(profile, use_mean_gap=True)
        assert beta[3].width == pytest.approx(0.4)  # mean gap 0.2, width 2*delta

    def test_explicit_delta(self):
        profile = FrequencyProfile({1: 10, 2: 10}, 100)
        beta = from_sample_belief(profile, delta=0.05)
        assert beta[1].low == pytest.approx(0.05)

    def test_single_group_requires_delta(self):
        profile = FrequencyProfile({1: 10, 2: 10}, 100)
        with pytest.raises(BeliefError):
            from_sample_belief(profile)

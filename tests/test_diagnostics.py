"""Unit tests for the simulator convergence diagnostics."""

import numpy as np
import pytest

from repro.beliefs import uniform_width_belief
from repro.errors import SimulationError
from repro.graph import space_from_frequencies
from repro.simulation import (
    autocorrelation_time,
    diagnose_chains,
    effective_sample_size,
    potential_scale_reduction,
)


class TestPotentialScaleReduction:
    def test_identical_chains_give_one(self, rng):
        chain = rng.normal(size=200)
        # Identical chains: between-chain variance 0, R-hat -> sqrt((L-1)/L).
        assert potential_scale_reduction([chain, chain]) == pytest.approx(1.0, abs=0.01)

    def test_iid_chains_close_to_one(self, rng):
        chains = rng.normal(size=(4, 500))
        assert potential_scale_reduction(chains) == pytest.approx(1.0, abs=0.05)

    def test_shifted_chains_flagged(self, rng):
        a = rng.normal(0.0, 1.0, size=300)
        b = rng.normal(5.0, 1.0, size=300)
        assert potential_scale_reduction([a, b]) > 1.5

    def test_constant_chains(self):
        assert potential_scale_reduction([[2.0, 2.0], [2.0, 2.0]]) == 1.0
        assert potential_scale_reduction([[1.0, 1.0], [2.0, 2.0]]) == float("inf")

    def test_input_validation(self):
        with pytest.raises(SimulationError):
            potential_scale_reduction([[1.0, 2.0]])


class TestAutocorrelationTime:
    def test_iid_series_near_one(self, rng):
        series = rng.normal(size=2000)
        assert autocorrelation_time(series) == pytest.approx(1.0, abs=0.3)

    def test_correlated_series_larger(self, rng):
        # AR(1) with strong persistence.
        noise = rng.normal(size=2000)
        series = np.zeros(2000)
        for t in range(1, 2000):
            series[t] = 0.9 * series[t - 1] + noise[t]
        assert autocorrelation_time(series) > 5.0

    def test_constant_series(self):
        assert autocorrelation_time([3.0] * 10) == 1.0

    def test_too_short(self):
        with pytest.raises(SimulationError):
            autocorrelation_time([1.0, 2.0])

    def test_effective_sample_size(self, rng):
        series = rng.normal(size=1000)
        assert effective_sample_size(series) == pytest.approx(1000, rel=0.35)


class TestDiagnoseChains:
    @pytest.fixture
    def space(self, rng):
        freqs = {i: round(float(f), 2) for i, f in enumerate(rng.random(25), start=1)}
        return space_from_frequencies(uniform_width_belief(freqs, 0.05), freqs)

    def test_gibbs_converges_on_small_space(self, space):
        report = diagnose_chains(
            space,
            n_chains=4,
            n_samples=150,
            method="gibbs",
            rng=np.random.default_rng(1),
        )
        assert report.converged(r_hat_threshold=1.2)
        assert report.n_chains == 4
        assert "R-hat" in report.summary()

    def test_swap_converges_on_small_space(self, space):
        report = diagnose_chains(
            space,
            n_chains=4,
            n_samples=150,
            sweeps_per_sample=2,
            method="swap",
            rng=np.random.default_rng(2),
        )
        assert report.converged(r_hat_threshold=1.3)

    def test_rao_blackwell_observable(self, space):
        report = diagnose_chains(
            space,
            n_chains=2,
            n_samples=50,
            method="gibbs",
            observable="rao_blackwell",
            rng=np.random.default_rng(3),
        )
        assert report.effective_samples > 0

    def test_validation(self, space, rng):
        with pytest.raises(SimulationError):
            diagnose_chains(space, n_chains=1, rng=rng)
        with pytest.raises(SimulationError):
            diagnose_chains(space, method="other", rng=rng)
        with pytest.raises(SimulationError):
            diagnose_chains(space, observable="other", rng=rng)

    def test_explicit_space_gibbs_rejected(self, two_blocks_space, rng):
        with pytest.raises(SimulationError):
            diagnose_chains(two_blocks_space, method="gibbs", rng=rng)

    def test_explicit_space_swap_allowed(self, two_blocks_space, rng):
        report = diagnose_chains(
            two_blocks_space, n_chains=2, n_samples=50, method="swap", rng=rng
        )
        assert report.n_samples == 50

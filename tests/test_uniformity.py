"""Statistical uniformity tests: do the samplers hit the right law?

The paper's whole risk model rests on "each consistent crack mapping is
equally likely".  These tests verify the samplers actually realize that
law, by chi-square goodness-of-fit of sampled crack-count distributions
against the exact enumeration law on small spaces.
"""

import numpy as np
import pytest
from scipy import stats

from repro.beliefs import interval_belief
from repro.core import ChainSpec, space_from_chain
from repro.graph import crack_distribution, space_from_frequencies
from repro.simulation import GibbsAssignmentSampler, MatchingSampler
from repro.simulation.exact import sample_chain_cracks


@pytest.fixture
def small_space():
    freqs = {1: 0.2, 2: 0.2, 3: 0.5, 4: 0.5, 5: 0.5}
    belief = interval_belief(
        {1: (0.1, 0.3), 2: (0.1, 0.6), 3: (0.4, 0.6), 4: (0.1, 0.6), 5: (0.4, 0.6)}
    )
    return space_from_frequencies(belief, freqs)


def chi_square_pvalue(observed_counts: dict, expected_law: np.ndarray, n_draws: int) -> float:
    support = [k for k, p in enumerate(expected_law) if p > 1e-12]
    observed = np.array([observed_counts.get(k, 0) for k in support], dtype=float)
    expected = np.array([expected_law[k] * n_draws for k in support])
    # merge rare bins into their neighbour to keep expected counts >= 5
    while len(expected) > 2 and expected.min() < 5:
        index = int(expected.argmin())
        neighbour = index - 1 if index > 0 else 1
        expected[neighbour] += expected[index]
        observed[neighbour] += observed[index]
        expected = np.delete(expected, index)
        observed = np.delete(observed, index)
    statistic, pvalue = stats.chisquare(observed, expected)
    return float(pvalue)


def collect_counts(sampler, n_draws: int, gap: int = 3) -> dict:
    counts: dict = {}
    for _ in range(n_draws):
        sampler.sweep(gap)
        value = sampler.crack_count()
        counts[value] = counts.get(value, 0) + 1
    return counts


class TestSwapChainUniformity:
    def test_crack_law_matches_enumeration(self, small_space):
        law = crack_distribution(small_space)
        sampler = MatchingSampler(small_space, rng=np.random.default_rng(3))
        sampler.sweep(50)
        counts = collect_counts(sampler, 4000)
        assert chi_square_pvalue(counts, law, 4000) > 1e-3


class TestGibbsChainUniformity:
    def test_crack_law_matches_enumeration(self, small_space):
        law = crack_distribution(small_space)
        sampler = GibbsAssignmentSampler(small_space, rng=np.random.default_rng(4))
        sampler.sweep(50)
        counts = collect_counts(sampler, 4000, gap=2)
        assert chi_square_pvalue(counts, law, 4000) > 1e-3


class TestExactChainSamplerUniformity:
    def test_crack_law_matches_enumeration(self):
        spec = ChainSpec((3, 2), (1, 1), (3,))
        space = space_from_chain(spec)
        law = crack_distribution(space)
        samples = sample_chain_cracks(
            space, 5000, rng=np.random.default_rng(5), rao_blackwell=False
        )
        counts: dict = {}
        for value in samples:
            counts[int(value)] = counts.get(int(value), 0) + 1
        assert chi_square_pvalue(counts, law, 5000) > 1e-3

    def test_bigmart_swap_matches_full_law(self, bigmart_space_h):
        law = crack_distribution(bigmart_space_h)
        sampler = MatchingSampler(bigmart_space_h, rng=np.random.default_rng(6))
        sampler.sweep(50)
        counts = collect_counts(sampler, 3000)
        assert chi_square_pvalue(counts, law, 3000) > 1e-3

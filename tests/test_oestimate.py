"""Unit tests for the O-estimate heuristic (Figure 5) and its properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beliefs import (
    ignorant_belief,
    point_belief,
    uniform_width_belief,
)
from repro.core import o_estimate, o_estimate_from_frequencies
from repro.graph import expected_cracks_direct, space_from_frequencies


class TestBigMart:
    def test_belief_h_value(self, bigmart_space_h):
        # 1/6 + 1/5 + 1/4 + 1/5 + 1/2 + 1/4
        result = o_estimate(bigmart_space_h)
        assert result.value == pytest.approx(1 / 6 + 1 / 5 + 1 / 4 + 1 / 5 + 1 / 2 + 1 / 4)
        assert result.n == 6
        assert result.n_compliant == 6
        assert not result.propagated

    def test_fraction(self, bigmart_space_h):
        result = o_estimate(bigmart_space_h)
        assert result.fraction == pytest.approx(result.value / 6)

    def test_within_tolerance(self, bigmart_space_h):
        result = o_estimate(bigmart_space_h)
        assert result.within_tolerance(0.5)
        assert not result.within_tolerance(0.1)

    def test_convenience_wrapper(self, belief_h, bigmart_frequencies, bigmart_space_h):
        direct = o_estimate_from_frequencies(belief_h, bigmart_frequencies)
        assert direct.value == pytest.approx(o_estimate(bigmart_space_h).value)


class TestSpecialBeliefs:
    def test_ignorant_oe_is_one(self, bigmart_frequencies):
        space = space_from_frequencies(
            ignorant_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert o_estimate(space).value == pytest.approx(1.0)

    def test_point_valued_oe_is_g(self, bigmart_frequencies):
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        assert o_estimate(space).value == pytest.approx(3.0)


class TestCompliantSubsets:
    def test_noncompliant_items_excluded(self, bigmart_frequencies):
        belief = uniform_width_belief(bigmart_frequencies, 0.02).replace(
            {5: (0.45, 0.55)}  # wrong guess for item 5 (true 0.3)
        )
        space = space_from_frequencies(belief, bigmart_frequencies)
        result = o_estimate(space)
        assert result.n_compliant == 5
        item5 = space.item_index(5)
        assert item5 not in set(space.compliant_indices())

    def test_explicit_compliant_indices(self, bigmart_space_h):
        result = o_estimate(bigmart_space_h, compliant_indices=[0, 1])
        degrees = bigmart_space_h.outdegrees()
        assert result.value == pytest.approx(1 / degrees[0] + 1 / degrees[1])


class TestPropagation:
    def test_staircase(self, staircase_space):
        raw = o_estimate(staircase_space)
        assert raw.value == pytest.approx(25 / 12)
        propagated = o_estimate(staircase_space, propagate=True)
        assert propagated.value == pytest.approx(4.0)
        assert propagated.n_forced == 4

    def test_propagation_no_op_when_no_degree_one(self, two_blocks_space):
        raw = o_estimate(two_blocks_space)
        propagated = o_estimate(two_blocks_space, propagate=True)
        assert propagated.value == pytest.approx(raw.value)
        assert propagated.n_forced == 0

    def test_forced_wrong_pair_counts_zero(self):
        from repro.graph import ExplicitMappingSpace

        # Anonymized "a" truly belongs to item 1, but only item 2's belief
        # admits it: the forced pair (2, a) is a certain *miss*.
        space = ExplicitMappingSpace(
            items=(1, 2),
            anonymized=("a", "b"),
            adjacency=[[1], [0, 1]],
            true_partner_of=[0, 1],
        )
        result = o_estimate(space, propagate=True)
        # item 1 is forced onto "b" (wrong), item 2 onto "a" (wrong): 0 cracks.
        assert result.value == pytest.approx(0.0)
        assert result.n_forced == 2


class TestMonotonicity:
    def test_lemma8_widening_decreases_oe(self, bigmart_frequencies):
        previous = float("inf")
        for delta in [0.0, 0.05, 0.1, 0.2, 0.5]:
            belief = uniform_width_belief(bigmart_frequencies, delta)
            space = space_from_frequencies(belief, bigmart_frequencies)
            value = o_estimate(space).value
            assert value <= previous + 1e-12
            previous = value

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(2, 20),
        d1=st.floats(0.0, 0.5),
        d2=st.floats(0.0, 0.5),
    )
    def test_lemma8_property(self, seed, n, d1, d2):
        rng = np.random.default_rng(seed)
        freqs = {i: float(f) for i, f in enumerate(rng.random(n), start=1)}
        narrow, wide = min(d1, d2), max(d1, d2)
        narrow_space = space_from_frequencies(
            uniform_width_belief(freqs, narrow), freqs
        )
        wide_space = space_from_frequencies(uniform_width_belief(freqs, wide), freqs)
        assert o_estimate(narrow_space).value >= o_estimate(wide_space).value - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 12))
    def test_lemma10_property(self, seed, n):
        # Removing items from the compliant subset never increases OE.
        rng = np.random.default_rng(seed)
        freqs = {i: float(f) for i, f in enumerate(rng.random(n), start=1)}
        space = space_from_frequencies(uniform_width_belief(freqs, 0.1), freqs)
        order = rng.permutation(n)
        values = [
            o_estimate(space, compliant_indices=order[:count]).value
            for count in range(n + 1)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestAccuracyAgainstExact:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 8), delta=st.floats(0.0, 0.4))
    def test_oe_close_to_direct_method(self, seed, n, delta):
        # On random compliant interval beliefs over small domains the
        # O-estimate tracks the exact value; we bound the gap loosely.
        rng = np.random.default_rng(seed)
        freqs = {i: round(float(f), 2) for i, f in enumerate(rng.random(n), start=1)}
        belief = uniform_width_belief(freqs, delta)
        space = space_from_frequencies(belief, freqs)
        exact = expected_cracks_direct(space)
        estimate = o_estimate(space).value
        assert estimate <= exact + 1e-9  # OE underestimates for compliant beliefs
        assert exact - estimate <= 0.5 * max(1.0, exact)

"""Compute budgets: deadlines, quotas, partials, and bit-identical resume.

Tier-1 coverage for :mod:`repro.budget` and its integration with the
samplers and the assessment recipe (ISSUE 5, deadline-aware anytime
assessment).  The headline property: interrupting a Gibbs chain at *any*
sweep boundary, snapshotting through JSON, and resuming reproduces the
uninterrupted run bit for bit — across 100 random instances.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.budget import ComputeBudget, PartialEstimate
from repro.errors import BudgetExceeded, FormatError, ReproError, SimulationError
from repro.graph import space_from_frequencies
from repro.recipe.assess import Decision, assess_risk
from repro.simulation.estimate import simulate_expected_cracks
from repro.simulation.exact import best_expected_cracks, sample_chain_cracks
from repro.simulation.gibbs import GibbsAssignmentSampler


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def random_space(rng, n_items=8, resolution=10):
    """A compliant frequency mapping space over a coarse frequency grid."""
    from repro.beliefs import interval_belief

    frequencies = {
        i: float(rng.integers(1, resolution + 1)) / resolution
        for i in range(1, n_items + 1)
    }
    intervals = {}
    for item, f in frequencies.items():
        width = float(rng.random()) * 0.3
        intervals[item] = (max(0.0, f - width), min(1.0, f + width))
    return space_from_frequencies(interval_belief(intervals), frequencies)


class TestComputeBudget:
    def test_deadline_raises_with_reason(self):
        clock = FakeClock()
        budget = ComputeBudget(seconds=10.0, clock=clock)
        budget.poll()  # within budget
        assert not budget.expired()
        clock.advance(11.0)
        assert budget.expired()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.poll()
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.partial is None

    def test_remaining_seconds(self):
        clock = FakeClock()
        budget = ComputeBudget(seconds=10.0, clock=clock)
        clock.advance(4.0)
        assert budget.remaining_seconds() == pytest.approx(6.0)
        assert ComputeBudget().remaining_seconds() is None
        assert not ComputeBudget().expired()

    def test_cancellation(self):
        budget = ComputeBudget(seconds=1000.0)
        budget.poll()
        budget.cancel()
        assert budget.cancelled()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.poll()
        assert excinfo.value.reason == "cancelled"

    def test_sweep_quota_records_then_raises(self):
        budget = ComputeBudget(max_sweeps=3)
        budget.sweep_tick()
        budget.sweep_tick()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.sweep_tick()
        assert excinfo.value.reason == "sweeps"
        assert budget.sweeps_completed == 3

    def test_checkpoint_throttles_polls(self):
        budget = ComputeBudget(poll_every=10)
        for _ in range(9):
            budget.checkpoint()
        assert budget.polls == 0
        budget.checkpoint()
        assert budget.polls == 1
        budget.checkpoint(weight=10)  # heavy unit of work polls at once
        assert budget.polls == 2

    def test_poll_fires_fault_hook(self):
        sites = []
        budget = ComputeBudget(fault_hook=sites.append)
        budget.poll()
        budget.checkpoint(weight=budget.poll_every)
        assert sites == ["budget.poll", "budget.poll"]

    def test_constructor_validation(self):
        with pytest.raises(FormatError):
            ComputeBudget(seconds=0)
        with pytest.raises(FormatError):
            ComputeBudget(max_sweeps=0)
        with pytest.raises(FormatError):
            ComputeBudget(poll_every=0)

    def test_budget_exceeded_is_a_repro_error(self):
        # Retry logic classifies ReproError as deterministic; a budget
        # exhaustion must never be retried as if it were transient.
        assert issubclass(BudgetExceeded, ReproError)


class TestPartialEstimate:
    def test_json_round_trip(self):
        partial = PartialEstimate(
            value=3.5, std_error=0.25, sweeps_completed=17, rung="mcmc-gibbs",
            reason="sweeps",
        )
        payload = json.loads(json.dumps(partial.to_json()))
        assert PartialEstimate.from_json(payload) == partial

    def test_std_error_must_be_finite(self):
        for bad in (float("inf"), float("-inf"), float("nan")):
            with pytest.raises(FormatError):
                PartialEstimate(value=1.0, std_error=bad, sweeps_completed=0, rung="x")

    def test_negative_sweeps_rejected(self):
        with pytest.raises(FormatError):
            PartialEstimate(value=1.0, std_error=0.0, sweeps_completed=-1, rung="x")

    def test_from_json_rejects_malformed(self):
        with pytest.raises(FormatError):
            PartialEstimate.from_json({"type": "something_else"})
        with pytest.raises(FormatError):
            PartialEstimate.from_json({"type": "partial_estimate", "value": 1.0})


class TestRequestBudget:
    def test_validation(self):
        from repro.service.budget import MAX_DEADLINE_SECONDS, request_budget

        with pytest.raises(ReproError):
            request_budget(0)
        with pytest.raises(ReproError):
            request_budget(-1.0)
        with pytest.raises(ReproError):
            request_budget(MAX_DEADLINE_SECONDS + 1)
        budget = request_budget(5.0)
        assert budget.remaining_seconds() <= 5.0


class TestSamplerBudgets:
    def test_generous_budget_is_identity(self, bigmart_space_h):
        for method in ("gibbs", "swap"):
            plain = simulate_expected_cracks(
                bigmart_space_h, runs=2, samples_per_run=20,
                rng=np.random.default_rng(7), method=method,
            )
            budgeted = simulate_expected_cracks(
                bigmart_space_h, runs=2, samples_per_run=20,
                rng=np.random.default_rng(7), method=method,
                budget=ComputeBudget(seconds=1e6, max_sweeps=10**9),
            )
            assert plain == budgeted

    def test_quota_exhaustion_carries_finite_partial(self, bigmart_space_h):
        budget = ComputeBudget(max_sweeps=10)
        with pytest.raises(BudgetExceeded) as excinfo:
            simulate_expected_cracks(
                bigmart_space_h, runs=2, samples_per_run=50,
                burn_in_sweeps=2, sweeps_per_sample=1,
                rng=np.random.default_rng(3), method="gibbs", budget=budget,
            )
        partial = excinfo.value.partial
        assert isinstance(partial, PartialEstimate)
        assert math.isfinite(partial.value)
        assert math.isfinite(partial.std_error)
        assert partial.rung == "mcmc-gibbs"
        assert partial.reason == "sweeps"
        assert partial.sweeps_completed == 10

    def test_quota_before_first_sample_gives_no_partial(self, bigmart_space_h):
        budget = ComputeBudget(max_sweeps=1)
        with pytest.raises(BudgetExceeded) as excinfo:
            simulate_expected_cracks(
                bigmart_space_h, runs=1, samples_per_run=5,
                burn_in_sweeps=5, rng=np.random.default_rng(3),
                method="gibbs", budget=budget,
            )
        assert excinfo.value.partial is None

    def test_chain_sampler_cancellation(self):
        from repro.core import ChainSpec, space_from_chain

        space = space_from_chain(ChainSpec((3, 2), (1, 1), (3,)))
        budget = ComputeBudget(poll_every=1)
        budget.cancel()
        with pytest.raises(BudgetExceeded) as excinfo:
            sample_chain_cracks(
                space, 10, rng=np.random.default_rng(0), budget=budget
            )
        assert excinfo.value.reason == "cancelled"

    def test_best_expected_cracks_exact_rung_ignores_sweep_quota(
        self, bigmart_space_h
    ):
        plain = best_expected_cracks(bigmart_space_h, rng=np.random.default_rng(1))
        budgeted = best_expected_cracks(
            bigmart_space_h,
            rng=np.random.default_rng(1),
            budget=ComputeBudget(max_sweeps=1),
        )
        assert plain == budgeted
        assert plain[2] not in ("mcmc-gibbs", "mcmc-swap")

    def test_ladder_degrades_when_exact_rung_exhausts(
        self, bigmart_space_h, monkeypatch
    ):
        import repro.graph.exact as graph_exact

        def exhausted(space, budget=None):
            raise BudgetExceeded("deadline hit in DP", reason="deadline")

        monkeypatch.setattr(graph_exact, "expected_cracks_exact", exhausted)
        mean, stderr, strategy = best_expected_cracks(
            bigmart_space_h, n_samples=50, rng=np.random.default_rng(5),
            budget=ComputeBudget(seconds=1e6),
        )
        assert strategy in ("chain-sampler", "mcmc-gibbs")
        assert math.isfinite(mean) and math.isfinite(stderr)


class TestSnapshotResume:
    def test_snapshot_survives_json(self, bigmart_space_h):
        sampler = GibbsAssignmentSampler(
            bigmart_space_h, rng=np.random.default_rng(2)
        )
        sampler.sweep(3)
        payload = json.loads(json.dumps(sampler.snapshot()))
        clone = GibbsAssignmentSampler.from_snapshot(bigmart_space_h, payload)
        assert np.array_equal(clone.assignment, sampler.assignment)
        assert clone.rng.bit_generator.state == sampler.rng.bit_generator.state

    def test_restore_rejects_malformed(self, bigmart_space_h):
        sampler = GibbsAssignmentSampler(
            bigmart_space_h, rng=np.random.default_rng(2)
        )
        with pytest.raises(FormatError):
            sampler.restore({"type": "other"})
        snapshot = sampler.snapshot()
        snapshot["n"] = snapshot["n"] + 1
        with pytest.raises(SimulationError):
            sampler.restore(snapshot)

    def test_interrupt_resume_bit_identical_100_instances(self):
        """Acceptance property: interrupt at any sweep + resume == straight run."""
        total_sweeps = 6
        interrupted_runs = 0
        for seed in range(100):
            rng = np.random.default_rng(seed)
            space = random_space(rng, n_items=int(rng.integers(4, 11)))
            cut = int(rng.integers(1, total_sweeps))

            straight = GibbsAssignmentSampler(
                space, rng=np.random.default_rng(seed + 1)
            )
            straight.sweep(total_sweeps)

            interrupted = GibbsAssignmentSampler(
                space, rng=np.random.default_rng(seed + 1)
            )
            budget = ComputeBudget(max_sweeps=cut)
            try:
                interrupted.sweep(total_sweeps, budget=budget)
                completed = total_sweeps  # k < 2: nothing to interrupt
            except BudgetExceeded as exc:
                assert exc.reason == "sweeps"
                completed = budget.sweeps_completed
                interrupted_runs += 1
                assert completed == cut

            snapshot = json.loads(json.dumps(interrupted.snapshot()))
            resumed = GibbsAssignmentSampler.from_snapshot(space, snapshot)
            resumed.sweep(total_sweeps - completed)

            assert np.array_equal(resumed.assignment, straight.assignment), seed
            assert (
                resumed.rng.bit_generator.state == straight.rng.bit_generator.state
            ), seed
        # The property must actually exercise interruption, not just
        # trivially-complete chains.
        assert interrupted_runs >= 90


class TestRecipeBudget:
    def test_assess_risk_unbudgeted_unchanged(self, bigmart_db):
        profile = bigmart_db.to_profile()
        plain = assess_risk(profile, 0.1, rng=np.random.default_rng(0))
        budgeted = assess_risk(
            profile, 0.1, rng=np.random.default_rng(0),
            budget=ComputeBudget(seconds=1e6),
        )
        assert plain.decision == budgeted.decision
        assert plain.alpha_max == budgeted.alpha_max
        assert not budgeted.partial

    def test_assess_risk_degrades_to_inconclusive(self, bigmart_db):
        profile = bigmart_db.to_profile()
        clock = FakeClock()
        polls = []

        def hook(site):
            polls.append(site)
            # The hook fires before the expiry check, so advancing on the
            # second poll lets the first (pre-bound, partial-less) stage
            # pass and expires the deadline once an O-estimate is bounded.
            if len(polls) == 2:
                clock.advance(100.0)

        budget = ComputeBudget(seconds=50.0, clock=clock, fault_hook=hook)
        report = assess_risk(
            profile, 0.1, rng=np.random.default_rng(0), budget=budget
        )
        assert report.decision is Decision.INCONCLUSIVE
        assert report.partial
        assert not report.disclose
        partial = report.partial_estimate
        assert partial is not None
        assert partial.reason == "deadline"
        assert math.isfinite(partial.value)
        assert math.isfinite(partial.std_error)
        assert "partial" in report.summary()

    def test_inconclusive_assessment_round_trips(self, bigmart_db):
        from repro.io import assessment_from_json, assessment_to_json

        profile = bigmart_db.to_profile()
        clock = FakeClock()
        polls = []

        def hook(site):
            polls.append(site)
            if len(polls) == 2:
                clock.advance(100.0)

        budget = ComputeBudget(seconds=50.0, clock=clock, fault_hook=hook)
        report = assess_risk(
            profile, 0.1, rng=np.random.default_rng(0), budget=budget
        )
        assert report.decision is Decision.INCONCLUSIVE
        restored = assessment_from_json(
            json.loads(json.dumps(assessment_to_json(report)))
        )
        assert restored == report

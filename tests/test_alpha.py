"""Unit tests for alpha-compliant analysis (Section 5.3, 6.2)."""

import numpy as np
import pytest

from repro.beliefs import uniform_width_belief
from repro.core import alpha_curve, alpha_max, alpha_max_binary_search, o_estimate, o_estimate_alpha
from repro.core.alpha import compliance_prefix_sums
from repro.errors import RecipeError
from repro.graph import space_from_frequencies


@pytest.fixture
def medium_space(rng):
    freqs = {i: round(float(f), 2) for i, f in enumerate(rng.random(40), start=1)}
    belief = uniform_width_belief(freqs, 0.03)
    return space_from_frequencies(belief, freqs)


class TestPrefixSums:
    def test_shape_and_monotonicity(self, medium_space, rng):
        prefix = compliance_prefix_sums(medium_space, runs=4, rng=rng)
        assert prefix.shape == (4, medium_space.n + 1)
        assert (np.diff(prefix, axis=1) >= 0).all()
        assert (prefix[:, 0] == 0).all()

    def test_full_count_equals_full_oe(self, medium_space, rng):
        prefix = compliance_prefix_sums(medium_space, runs=3, rng=rng)
        full = o_estimate(medium_space).value
        assert prefix[:, -1] == pytest.approx(np.full(3, full))

    def test_invalid_runs(self, medium_space, rng):
        with pytest.raises(RecipeError):
            compliance_prefix_sums(medium_space, runs=0, rng=rng)


class TestAlphaCurve:
    def test_endpoints(self, medium_space, rng):
        curve = alpha_curve(medium_space, [0.0, 1.0], runs=3, rng=rng)
        assert curve.means[0] == pytest.approx(0.0)
        assert curve.means[1] == pytest.approx(o_estimate(medium_space).value)
        assert curve.stds[1] == pytest.approx(0.0)  # all runs share the full sum

    def test_monotone_in_alpha(self, medium_space, rng):
        alphas = np.linspace(0, 1, 11)
        curve = alpha_curve(medium_space, alphas, runs=5, rng=rng)
        assert all(a <= b + 1e-12 for a, b in zip(curve.means, curve.means[1:]))

    def test_expectation_is_linear(self, medium_space):
        # E[OE(alpha)] = alpha * OE(1) for uniformly random subsets: with
        # many runs the curve approaches the diagonal.
        rng = np.random.default_rng(0)
        curve = alpha_curve(medium_space, [0.5], runs=400, rng=rng)
        full = o_estimate(medium_space).value
        assert curve.means[0] == pytest.approx(0.5 * full, rel=0.1)

    def test_fractions(self, medium_space, rng):
        curve = alpha_curve(medium_space, [1.0], runs=2, rng=rng)
        assert curve.fractions[0] == pytest.approx(curve.means[0] / medium_space.n)

    def test_invalid_alpha_rejected(self, medium_space, rng):
        with pytest.raises(RecipeError):
            alpha_curve(medium_space, [1.2], runs=2, rng=rng)

    def test_single_alpha_helper(self, medium_space):
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        value = o_estimate_alpha(medium_space, 0.4, runs=3, rng=rng1)
        curve = alpha_curve(medium_space, [0.4], runs=3, rng=rng2)
        assert value == pytest.approx(curve.means[0])


class TestAlphaMax:
    def test_extremes(self, medium_space, rng):
        assert alpha_max(medium_space, 1.0, rng=rng) == pytest.approx(1.0)
        assert alpha_max(medium_space, 0.0, rng=rng) == pytest.approx(0.0)

    def test_estimate_at_alpha_max_within_budget(self, medium_space):
        tolerance = 0.2
        rng = np.random.default_rng(3)
        best = alpha_max(medium_space, tolerance, runs=5, rng=rng)
        rng = np.random.default_rng(3)
        prefix = compliance_prefix_sums(medium_space, runs=5, rng=rng)
        count = round(best * medium_space.n)
        assert prefix.mean(axis=0)[count] <= tolerance * medium_space.n + 1e-9

    def test_binary_search_agrees_with_exact_inversion(self, medium_space):
        for tolerance in [0.05, 0.1, 0.3]:
            exact = alpha_max(medium_space, tolerance, rng=np.random.default_rng(5))
            searched = alpha_max_binary_search(
                medium_space, tolerance, rng=np.random.default_rng(5), precision=1e-4
            )
            assert searched == pytest.approx(exact, abs=2 / medium_space.n)

    def test_monotone_in_tolerance(self, medium_space):
        values = [
            alpha_max(medium_space, t, rng=np.random.default_rng(11))
            for t in [0.01, 0.05, 0.1, 0.2, 0.5, 1.0]
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_invalid_tolerance(self, medium_space, rng):
        with pytest.raises(RecipeError):
            alpha_max(medium_space, -0.1, rng=rng)
        with pytest.raises(RecipeError):
            alpha_max_binary_search(medium_space, 1.5, rng=rng)

"""Unit tests for risk profiles and decision-support curves."""

import numpy as np
import pytest

from repro.analysis import RiskProfile, delta_sensitivity, tolerance_curve
from repro.beliefs import uniform_width_belief
from repro.core import o_estimate
from repro.errors import RecipeError
from repro.graph import space_from_frequencies


class TestRiskProfile:
    def test_bigmart_attribution(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        assert profile.expected_cracks == pytest.approx(
            o_estimate(bigmart_space_h).value
        )
        assert len(profile) == 6
        assert profile.n_noncompliant == 0

    def test_most_exposed_first(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        probabilities = [risk.crack_probability for risk in profile.items]
        assert probabilities == sorted(probabilities, reverse=True)
        # Item 5 has outdegree 2 - the most exposed in BigMart under h.
        assert profile.items[0].item == 5

    def test_surely_cracked(self, staircase_space):
        profile = RiskProfile.from_space(staircase_space)
        assert profile.n_surely_cracked == 1  # only item "a" has O_x = 1

    def test_noncompliant_attribution(self, bigmart_frequencies):
        belief = uniform_width_belief(bigmart_frequencies, 0.02).replace(
            {5: (0.8, 0.9)}
        )
        space = space_from_frequencies(belief, bigmart_frequencies)
        profile = RiskProfile.from_space(space)
        assert profile.n_noncompliant == 1
        risk5 = next(risk for risk in profile.items if risk.item == 5)
        assert risk5.crack_probability == 0.0
        assert not risk5.compliant

    def test_frequency_recorded(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        risk5 = next(risk for risk in profile.items if risk.item == 5)
        assert risk5.frequency == pytest.approx(0.3)

    def test_top_exposed(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        top = profile.top_exposed(2)
        assert len(top) == 2
        assert top[0].crack_probability >= top[1].crack_probability

    def test_histogram_covers_domain(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        histogram = profile.probability_histogram()
        assert sum(histogram.values()) == 6

    def test_markdown_rendering(self, bigmart_space_h):
        text = RiskProfile.from_space(bigmart_space_h).to_markdown(top_k=3)
        assert "# Disclosure risk profile" in text
        assert "expected cracks" in text
        assert text.count("\n| ") >= 4  # header + separator + 3 rows


class TestToleranceCurve:
    @pytest.fixture
    def space(self, rng):
        freqs = {i: round(float(f), 2) for i, f in enumerate(rng.random(30), start=1)}
        return space_from_frequencies(uniform_width_belief(freqs, 0.03), freqs)

    def test_monotone(self, space, rng):
        points = tolerance_curve(space, [0.01, 0.1, 0.3, 0.6, 1.0], rng=rng)
        alphas = [point.alpha_max for point in points]
        assert alphas == sorted(alphas)

    def test_extremes(self, space, rng):
        points = tolerance_curve(space, [0.0, 1.0], rng=rng)
        assert points[0].alpha_max == pytest.approx(0.0)
        assert points[1].alpha_max == pytest.approx(1.0)

    def test_agrees_with_alpha_max(self, space):
        from repro.core import alpha_max

        (point,) = tolerance_curve(space, [0.2], rng=np.random.default_rng(4))
        direct = alpha_max(space, 0.2, rng=np.random.default_rng(4))
        assert point.alpha_max == pytest.approx(direct)

    def test_invalid_tolerance(self, space, rng):
        with pytest.raises(RecipeError):
            tolerance_curve(space, [1.2], rng=rng)


class TestDeltaSensitivity:
    def test_monotone_nonincreasing(self, bigmart_frequencies):
        points = delta_sensitivity(bigmart_frequencies, [0.0, 0.05, 0.1, 0.3, 1.0])
        estimates = [point.estimate for point in points]
        assert all(a >= b - 1e-12 for a, b in zip(estimates, estimates[1:]))

    def test_endpoints(self, bigmart_frequencies):
        points = delta_sensitivity(bigmart_frequencies, [0.0, 1.0])
        # delta = 0: point-valued, OE = g = 3; delta = 1: ignorant, OE = 1.
        assert points[0].estimate == pytest.approx(3.0)
        assert points[-1].estimate == pytest.approx(1.0)

    def test_fraction_field(self, bigmart_frequencies):
        (point,) = delta_sensitivity(bigmart_frequencies, [0.05])
        assert point.fraction == pytest.approx(point.estimate / 6)

"""Unit tests for risk profiles and decision-support curves."""

import numpy as np
import pytest

from repro.analysis import RiskProfile, delta_sensitivity, tolerance_curve
from repro.beliefs import uniform_width_belief
from repro.core import o_estimate
from repro.errors import RecipeError
from repro.graph import space_from_frequencies


class TestRiskProfile:
    def test_bigmart_attribution(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        assert profile.expected_cracks == pytest.approx(
            o_estimate(bigmart_space_h).value
        )
        assert len(profile) == 6
        assert profile.n_noncompliant == 0

    def test_most_exposed_first(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        probabilities = [risk.crack_probability for risk in profile.items]
        assert probabilities == sorted(probabilities, reverse=True)
        # Item 5 has outdegree 2 - the most exposed in BigMart under h.
        assert profile.items[0].item == 5

    def test_surely_cracked(self, staircase_space):
        profile = RiskProfile.from_space(staircase_space)
        assert profile.n_surely_cracked == 1  # only item "a" has O_x = 1

    def test_noncompliant_attribution(self, bigmart_frequencies):
        belief = uniform_width_belief(bigmart_frequencies, 0.02).replace(
            {5: (0.8, 0.9)}
        )
        space = space_from_frequencies(belief, bigmart_frequencies)
        profile = RiskProfile.from_space(space)
        assert profile.n_noncompliant == 1
        risk5 = next(risk for risk in profile.items if risk.item == 5)
        assert risk5.crack_probability == 0.0
        assert not risk5.compliant

    def test_frequency_recorded(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        risk5 = next(risk for risk in profile.items if risk.item == 5)
        assert risk5.frequency == pytest.approx(0.3)

    def test_top_exposed(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        top = profile.top_exposed(2)
        assert len(top) == 2
        assert top[0].crack_probability >= top[1].crack_probability

    def test_histogram_covers_domain(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        histogram = profile.probability_histogram()
        assert sum(histogram.values()) == 6

    def test_markdown_rendering(self, bigmart_space_h):
        text = RiskProfile.from_space(bigmart_space_h).to_markdown(top_k=3)
        assert "# Disclosure risk profile" in text
        assert "expected cracks" in text
        assert text.count("\n| ") >= 4  # header + separator + 3 rows


class TestToleranceCurve:
    @pytest.fixture
    def space(self, rng):
        freqs = {i: round(float(f), 2) for i, f in enumerate(rng.random(30), start=1)}
        return space_from_frequencies(uniform_width_belief(freqs, 0.03), freqs)

    def test_monotone(self, space, rng):
        points = tolerance_curve(space, [0.01, 0.1, 0.3, 0.6, 1.0], rng=rng)
        alphas = [point.alpha_max for point in points]
        assert alphas == sorted(alphas)

    def test_extremes(self, space, rng):
        points = tolerance_curve(space, [0.0, 1.0], rng=rng)
        assert points[0].alpha_max == pytest.approx(0.0)
        assert points[1].alpha_max == pytest.approx(1.0)

    def test_agrees_with_alpha_max(self, space):
        from repro.core import alpha_max

        (point,) = tolerance_curve(space, [0.2], rng=np.random.default_rng(4))
        direct = alpha_max(space, 0.2, rng=np.random.default_rng(4))
        assert point.alpha_max == pytest.approx(direct)

    def test_invalid_tolerance(self, space, rng):
        with pytest.raises(RecipeError):
            tolerance_curve(space, [1.2], rng=rng)


class TestDeltaSensitivity:
    def test_monotone_nonincreasing(self, bigmart_frequencies):
        points = delta_sensitivity(bigmart_frequencies, [0.0, 0.05, 0.1, 0.3, 1.0])
        estimates = [point.estimate for point in points]
        assert all(a >= b - 1e-12 for a, b in zip(estimates, estimates[1:]))

    def test_endpoints(self, bigmart_frequencies):
        points = delta_sensitivity(bigmart_frequencies, [0.0, 1.0])
        # delta = 0: point-valued, OE = g = 3; delta = 1: ignorant, OE = 1.
        assert points[0].estimate == pytest.approx(3.0)
        assert points[-1].estimate == pytest.approx(1.0)

    def test_fraction_field(self, bigmart_frequencies):
        (point,) = delta_sensitivity(bigmart_frequencies, [0.05])
        assert point.fraction == pytest.approx(point.estimate / 6)


# ---------------------------------------------------------------------------
# repro-lint: the invariant analyzer
# ---------------------------------------------------------------------------
#
# Fixtures are in-memory source strings fed to analyze_source (with the
# module name that puts them in scope for each rule family), so this
# test file itself never trips the linter's directory walk.

from pathlib import Path

from repro.analysis.lint import REGISTRY, analyze_source, lint_paths
from repro.analysis.lint.cli import main as lint_main, result_to_json
from repro.analysis.lint.engine import Project

EXACT_MOD = "repro.graph.permanent"
DET_MOD = "repro.service.fingerprint"


def rules_hit(result):
    return {violation.rule for violation in result.violations}


class TestExactnessRules:
    def test_float_literal_flagged(self):
        result = analyze_source("x = 0.5\n", module=EXACT_MOD)
        assert "EX001" in rules_hit(result)

    def test_true_division_flagged(self):
        result = analyze_source("def f(a, b):\n    return a / b\n", module=EXACT_MOD)
        assert "EX002" in rules_hit(result)

    def test_augmented_division_flagged(self):
        result = analyze_source("def f(a, b):\n    a /= b\n    return a\n", module=EXACT_MOD)
        assert "EX002" in rules_hit(result)

    def test_inexact_math_flagged_allowlist_passes(self):
        bad = analyze_source("import math\ny = math.sqrt(2)\n", module=EXACT_MOD)
        assert "EX003" in rules_hit(bad)
        good = analyze_source("import math\ny = math.comb(5, 2)\n", module=EXACT_MOD)
        assert "EX003" not in rules_hit(good)

    def test_numpy_float_and_cast_flagged(self):
        source = "import numpy as np\na = np.zeros(3, dtype=np.float64)\nb = float(a.sum())\n"
        hits = rules_hit(analyze_source(source, module=EXACT_MOD))
        assert "EX004" in hits

    def test_other_modules_exempt(self):
        result = analyze_source("x = 0.5\ny = x / 2\n", module="repro.recipe.assess")
        assert not rules_hit(result) & {"EX001", "EX002"}


class TestDeterminismRules:
    def test_unseeded_random_flagged(self):
        result = analyze_source(
            "import random\nx = random.random()\n", module=DET_MOD
        )
        assert "DT001" in rules_hit(result)

    def test_unseeded_default_rng_flagged_seeded_passes(self):
        bad = analyze_source(
            "import numpy as np\nrng = np.random.default_rng()\n", module=DET_MOD
        )
        assert "DT001" in rules_hit(bad)
        good = analyze_source(
            "import numpy as np\nrng = np.random.default_rng(7)\n", module=DET_MOD
        )
        assert "DT001" not in rules_hit(good)

    def test_wall_clock_flagged_perf_counter_passes(self):
        bad = analyze_source("import time\nt = time.time()\n", module=DET_MOD)
        assert "DT002" in rules_hit(bad)
        good = analyze_source("import time\nt = time.perf_counter()\n", module=DET_MOD)
        assert "DT002" not in rules_hit(good)

    def test_urandom_flagged(self):
        result = analyze_source("import os\nx = os.urandom(8)\n", module=DET_MOD)
        assert "DT002" in rules_hit(result)

    def test_set_iteration_flagged_sorted_passes(self):
        bad = analyze_source(
            "out = [i for i in {3, 1, 2}]\n", module=DET_MOD
        )
        assert "DT003" in rules_hit(bad)
        good = analyze_source(
            "out = [i for i in sorted({3, 1, 2})]\n", module=DET_MOD
        )
        assert "DT003" not in rules_hit(good)

    def test_set_to_list_flagged(self):
        bad = analyze_source(
            "keys = list({'b', 'a'})\n", module=DET_MOD
        )
        assert "DT003" in rules_hit(bad)

    def test_out_of_zone_module_exempt(self):
        result = analyze_source(
            "import time\nt = time.time()\n", module="repro.recipe.report"
        )
        assert "DT002" not in rules_hit(result)


class TestFaultSafetyRules:
    def test_bare_except_flagged(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        assert "FS001" in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_swallowed_base_exception_flagged(self):
        source = "try:\n    pass\nexcept BaseException:\n    pass\n"
        assert "FS002" in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_reraising_base_exception_passes(self):
        source = (
            "try:\n    pass\nexcept BaseException as exc:\n"
            "    cleanup = True\n    raise\n"
        )
        assert "FS002" not in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_raising_different_exception_still_flagged(self):
        source = (
            "try:\n    pass\nexcept BaseException as exc:\n"
            "    raise RuntimeError('swallowed')\n"
        )
        assert "FS002" in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_service_json_dump_flagged(self):
        source = (
            "import json\n"
            "def save(payload, handle):\n    json.dump(payload, handle)\n"
        )
        assert "FS003" in rules_hit(
            analyze_source(source, module="repro.service.cache")
        )

    def test_service_write_open_flagged_read_passes(self):
        bad = "h = open('x.json', 'w')\n"
        assert "FS003" in rules_hit(analyze_source(bad, module="repro.service.cache"))
        good = "h = open('x.json')\n"
        assert "FS003" not in rules_hit(analyze_source(good, module="repro.service.cache"))

    def test_non_service_write_passes(self):
        source = "h = open('x.json', 'w')\n"
        assert "FS003" not in rules_hit(analyze_source(source, module="repro.io"))


class TestUnbudgetedHotLoopRule:
    def test_unbudgeted_while_in_simulation_flagged(self):
        source = "def run(x):\n    while x > 0:\n        x -= 1\n"
        assert "FS004" in rules_hit(
            analyze_source(source, module="repro.simulation.fake")
        )

    def test_unbudgeted_while_in_graph_flagged(self):
        source = "def run(x):\n    while x > 0:\n        x -= 1\n"
        assert "FS004" in rules_hit(analyze_source(source, module="repro.graph.fake"))

    def test_budget_name_in_loop_passes(self):
        source = (
            "def run(x, budget):\n"
            "    while x > 0:\n"
            "        budget.checkpoint()\n"
            "        x -= 1\n"
        )
        assert "FS004" not in rules_hit(
            analyze_source(source, module="repro.simulation.fake")
        )

    def test_poll_call_in_loop_passes(self):
        source = (
            "def run(x, quota):\n"
            "    while x > 0:\n"
            "        quota.tick(1)\n"
            "        x -= 1\n"
        )
        assert "FS004" not in rules_hit(
            analyze_source(source, module="repro.graph.fake")
        )

    def test_shifted_range_for_loop_flagged(self):
        source = "def run(n):\n    for s in range(1 << n):\n        pass\n"
        assert "FS004" in rules_hit(analyze_source(source, module="repro.graph.fake"))

    def test_plain_range_for_loop_passes(self):
        source = "def run(n):\n    for s in range(n):\n        pass\n"
        assert "FS004" not in rules_hit(
            analyze_source(source, module="repro.graph.fake")
        )

    def test_outside_hot_modules_passes(self):
        source = "def run(x):\n    while x > 0:\n        x -= 1\n"
        for module in ("repro.service.engine", "repro.data.database", None):
            assert "FS004" not in rules_hit(analyze_source(source, module=module))

    def test_audited_suppression_is_recorded(self):
        source = (
            "def run(x):\n"
            "    while x > 0:  # repro-lint: disable=FS004 -- bounded by x\n"
            "        x -= 1\n"
        )
        result = analyze_source(source, module="repro.graph.fake")
        assert "FS004" not in rules_hit(result)
        assert any(
            s.violation.rule == "FS004" and s.justification == "bounded by x"
            for s in result.suppressed
        )


class TestLayeringRules:
    def test_upward_module_level_import_flagged(self):
        project = Project()
        project.add_source(
            "from repro.service.engine import AssessmentEngine\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        result = project.run()
        assert "LY001" in {v.rule for v in result.violations}

    def test_lazy_upward_import_reported_as_ly002(self):
        project = Project()
        project.add_source(
            "def f():\n    from repro.core.chain import chain_from_space\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        result = project.run()
        hits = {v.rule for v in result.violations}
        assert "LY002" in hits and "LY001" not in hits

    def test_downward_import_passes(self):
        project = Project()
        project.add_source(
            "from repro.data.database import FrequencyProfile\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        result = project.run()
        assert not {v.rule for v in result.violations} & {"LY001", "LY002"}

    def test_cycle_detected(self):
        project = Project()
        project.add_source(
            "import repro.beliefs.order\n",
            path="src/repro/mining/fake_a.py",
            module="repro.mining.fake_a",
        )
        project.add_source(
            "import repro.mining.fake_a\n",
            path="src/repro/beliefs/fake_b.py",
            module="repro.beliefs.order",
        )
        result = project.run()
        assert "LY003" in {v.rule for v in result.violations}

    def test_dot_output(self):
        from repro.analysis.lint.rules_layering import layering_dot

        project = Project()
        project.add_source(
            "from repro.data.database import FrequencyProfile\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        dot = layering_dot(project.contexts)
        assert dot.startswith("digraph layering {")
        assert '"graph" -> "data"' in dot


class TestSuppressions:
    def test_line_suppression_with_justification(self):
        source = "x = 0.5  # repro-lint: disable=EX001 -- documented boundary\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" not in rules_hit(result)
        assert any(
            s.violation.rule == "EX001" and s.justification == "documented boundary"
            for s in result.suppressed
        )

    def test_next_line_suppression(self):
        source = "# repro-lint: disable-next-line=EX001\nx = 0.5\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" not in rules_hit(result)

    def test_file_suppression(self):
        source = "# repro-lint: disable-file=EX001\nx = 0.5\ny = 1.5\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" not in rules_hit(result)
        assert len(result.suppressed) == 2

    def test_function_suppression_scoped_to_body(self):
        source = (
            "def f():  # repro-lint: disable-function=EX001\n"
            "    return 0.5\n"
            "x = 1.5\n"
        )
        result = analyze_source(source, module=EXACT_MOD)
        lines = [v.line for v in result.violations if v.rule == "EX001"]
        assert lines == [3]

    def test_suppression_of_other_rule_does_not_mask(self):
        source = "x = 0.5  # repro-lint: disable=EX002\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" in rules_hit(result)

    def test_disable_all(self):
        source = "x = 0.5  # repro-lint: disable=all\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert not result.violations


class TestAnalyzerCli:
    def test_registry_has_all_families(self):
        Project()  # force registration
        families = {rule.family for rule in REGISTRY.values()}
        assert families >= {"exactness", "determinism", "fault-safety", "layering"}

    def test_shipped_tree_is_clean(self):
        root = Path(__file__).resolve().parent.parent
        result = lint_paths(
            [root / "src", root / "benchmarks", root / "tests"]
        )
        assert result.clean, "\n".join(v.render() for v in result.violations)

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert lint_main([str(dirty)]) == 1
        assert lint_main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_json_report_schema_matches_snapshot(self, tmp_path, capsys):
        import json

        target = tmp_path / "f.py"
        target.write_text("x = 1\n")
        assert lint_main(["--format", "json", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        root = Path(__file__).resolve().parent.parent
        snapshot = json.loads((root / "BENCH_lint.json").read_text())
        assert set(payload) == set(snapshot["report"])
        assert snapshot["report"]["clean"] is True

    def test_json_counts(self):
        result = analyze_source("x = 0.5\ny = 1 / 2\n", module=EXACT_MOD)
        payload = result_to_json(result)
        assert payload["violation_counts"]["EX001"] == 1
        assert payload["violation_counts"]["EX002"] == 1
        assert payload["clean"] is False

"""Unit tests for risk profiles and decision-support curves."""

import numpy as np
import pytest

from repro.analysis import RiskProfile, delta_sensitivity, tolerance_curve
from repro.beliefs import uniform_width_belief
from repro.core import o_estimate
from repro.errors import RecipeError
from repro.graph import space_from_frequencies


class TestRiskProfile:
    def test_bigmart_attribution(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        assert profile.expected_cracks == pytest.approx(
            o_estimate(bigmart_space_h).value
        )
        assert len(profile) == 6
        assert profile.n_noncompliant == 0

    def test_most_exposed_first(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        probabilities = [risk.crack_probability for risk in profile.items]
        assert probabilities == sorted(probabilities, reverse=True)
        # Item 5 has outdegree 2 - the most exposed in BigMart under h.
        assert profile.items[0].item == 5

    def test_surely_cracked(self, staircase_space):
        profile = RiskProfile.from_space(staircase_space)
        assert profile.n_surely_cracked == 1  # only item "a" has O_x = 1

    def test_noncompliant_attribution(self, bigmart_frequencies):
        belief = uniform_width_belief(bigmart_frequencies, 0.02).replace(
            {5: (0.8, 0.9)}
        )
        space = space_from_frequencies(belief, bigmart_frequencies)
        profile = RiskProfile.from_space(space)
        assert profile.n_noncompliant == 1
        risk5 = next(risk for risk in profile.items if risk.item == 5)
        assert risk5.crack_probability == 0.0
        assert not risk5.compliant

    def test_frequency_recorded(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        risk5 = next(risk for risk in profile.items if risk.item == 5)
        assert risk5.frequency == pytest.approx(0.3)

    def test_top_exposed(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        top = profile.top_exposed(2)
        assert len(top) == 2
        assert top[0].crack_probability >= top[1].crack_probability

    def test_histogram_covers_domain(self, bigmart_space_h):
        profile = RiskProfile.from_space(bigmart_space_h)
        histogram = profile.probability_histogram()
        assert sum(histogram.values()) == 6

    def test_markdown_rendering(self, bigmart_space_h):
        text = RiskProfile.from_space(bigmart_space_h).to_markdown(top_k=3)
        assert "# Disclosure risk profile" in text
        assert "expected cracks" in text
        assert text.count("\n| ") >= 4  # header + separator + 3 rows


class TestToleranceCurve:
    @pytest.fixture
    def space(self, rng):
        freqs = {i: round(float(f), 2) for i, f in enumerate(rng.random(30), start=1)}
        return space_from_frequencies(uniform_width_belief(freqs, 0.03), freqs)

    def test_monotone(self, space, rng):
        points = tolerance_curve(space, [0.01, 0.1, 0.3, 0.6, 1.0], rng=rng)
        alphas = [point.alpha_max for point in points]
        assert alphas == sorted(alphas)

    def test_extremes(self, space, rng):
        points = tolerance_curve(space, [0.0, 1.0], rng=rng)
        assert points[0].alpha_max == pytest.approx(0.0)
        assert points[1].alpha_max == pytest.approx(1.0)

    def test_agrees_with_alpha_max(self, space):
        from repro.core import alpha_max

        (point,) = tolerance_curve(space, [0.2], rng=np.random.default_rng(4))
        direct = alpha_max(space, 0.2, rng=np.random.default_rng(4))
        assert point.alpha_max == pytest.approx(direct)

    def test_invalid_tolerance(self, space, rng):
        with pytest.raises(RecipeError):
            tolerance_curve(space, [1.2], rng=rng)


class TestDeltaSensitivity:
    def test_monotone_nonincreasing(self, bigmart_frequencies):
        points = delta_sensitivity(bigmart_frequencies, [0.0, 0.05, 0.1, 0.3, 1.0])
        estimates = [point.estimate for point in points]
        assert all(a >= b - 1e-12 for a, b in zip(estimates, estimates[1:]))

    def test_endpoints(self, bigmart_frequencies):
        points = delta_sensitivity(bigmart_frequencies, [0.0, 1.0])
        # delta = 0: point-valued, OE = g = 3; delta = 1: ignorant, OE = 1.
        assert points[0].estimate == pytest.approx(3.0)
        assert points[-1].estimate == pytest.approx(1.0)

    def test_fraction_field(self, bigmart_frequencies):
        (point,) = delta_sensitivity(bigmart_frequencies, [0.05])
        assert point.fraction == pytest.approx(point.estimate / 6)


# ---------------------------------------------------------------------------
# repro-lint: the invariant analyzer
# ---------------------------------------------------------------------------
#
# Fixtures are in-memory source strings fed to analyze_source (with the
# module name that puts them in scope for each rule family), so this
# test file itself never trips the linter's directory walk.

from pathlib import Path

from repro.analysis.lint import REGISTRY, analyze_source, lint_paths
from repro.analysis.lint.cli import main as lint_main, result_to_json
from repro.analysis.lint.engine import Project

EXACT_MOD = "repro.graph.permanent"
DET_MOD = "repro.service.fingerprint"


def rules_hit(result):
    return {violation.rule for violation in result.violations}


class TestExactnessRules:
    def test_float_literal_flagged(self):
        result = analyze_source("x = 0.5\n", module=EXACT_MOD)
        assert "EX001" in rules_hit(result)

    def test_true_division_flagged(self):
        result = analyze_source("def f(a, b):\n    return a / b\n", module=EXACT_MOD)
        assert "EX002" in rules_hit(result)

    def test_augmented_division_flagged(self):
        result = analyze_source("def f(a, b):\n    a /= b\n    return a\n", module=EXACT_MOD)
        assert "EX002" in rules_hit(result)

    def test_inexact_math_flagged_allowlist_passes(self):
        bad = analyze_source("import math\ny = math.sqrt(2)\n", module=EXACT_MOD)
        assert "EX003" in rules_hit(bad)
        good = analyze_source("import math\ny = math.comb(5, 2)\n", module=EXACT_MOD)
        assert "EX003" not in rules_hit(good)

    def test_numpy_float_and_cast_flagged(self):
        source = "import numpy as np\na = np.zeros(3, dtype=np.float64)\nb = float(a.sum())\n"
        hits = rules_hit(analyze_source(source, module=EXACT_MOD))
        assert "EX004" in hits

    def test_other_modules_exempt(self):
        result = analyze_source("x = 0.5\ny = x / 2\n", module="repro.recipe.assess")
        assert not rules_hit(result) & {"EX001", "EX002"}


class TestDeterminismRules:
    def test_unseeded_random_flagged(self):
        result = analyze_source(
            "import random\nx = random.random()\n", module=DET_MOD
        )
        assert "DT001" in rules_hit(result)

    def test_unseeded_default_rng_flagged_seeded_passes(self):
        bad = analyze_source(
            "import numpy as np\nrng = np.random.default_rng()\n", module=DET_MOD
        )
        assert "DT001" in rules_hit(bad)
        good = analyze_source(
            "import numpy as np\nrng = np.random.default_rng(7)\n", module=DET_MOD
        )
        assert "DT001" not in rules_hit(good)

    def test_wall_clock_flagged_perf_counter_passes(self):
        bad = analyze_source("import time\nt = time.time()\n", module=DET_MOD)
        assert "DT002" in rules_hit(bad)
        good = analyze_source("import time\nt = time.perf_counter()\n", module=DET_MOD)
        assert "DT002" not in rules_hit(good)

    def test_urandom_flagged(self):
        result = analyze_source("import os\nx = os.urandom(8)\n", module=DET_MOD)
        assert "DT002" in rules_hit(result)

    def test_set_iteration_flagged_sorted_passes(self):
        bad = analyze_source(
            "out = [i for i in {3, 1, 2}]\n", module=DET_MOD
        )
        assert "DT003" in rules_hit(bad)
        good = analyze_source(
            "out = [i for i in sorted({3, 1, 2})]\n", module=DET_MOD
        )
        assert "DT003" not in rules_hit(good)

    def test_set_to_list_flagged(self):
        bad = analyze_source(
            "keys = list({'b', 'a'})\n", module=DET_MOD
        )
        assert "DT003" in rules_hit(bad)

    def test_out_of_zone_module_exempt(self):
        result = analyze_source(
            "import time\nt = time.time()\n", module="repro.recipe.report"
        )
        assert "DT002" not in rules_hit(result)


class TestFaultSafetyRules:
    def test_bare_except_flagged(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        assert "FS001" in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_swallowed_base_exception_flagged(self):
        source = "try:\n    pass\nexcept BaseException:\n    pass\n"
        assert "FS002" in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_reraising_base_exception_passes(self):
        source = (
            "try:\n    pass\nexcept BaseException as exc:\n"
            "    cleanup = True\n    raise\n"
        )
        assert "FS002" not in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_raising_different_exception_still_flagged(self):
        source = (
            "try:\n    pass\nexcept BaseException as exc:\n"
            "    raise RuntimeError('swallowed')\n"
        )
        assert "FS002" in rules_hit(analyze_source(source, module="repro.core.alpha"))

    def test_service_json_dump_flagged(self):
        source = (
            "import json\n"
            "def save(payload, handle):\n    json.dump(payload, handle)\n"
        )
        assert "FS003" in rules_hit(
            analyze_source(source, module="repro.service.cache")
        )

    def test_service_write_open_flagged_read_passes(self):
        bad = "h = open('x.json', 'w')\n"
        assert "FS003" in rules_hit(analyze_source(bad, module="repro.service.cache"))
        good = "h = open('x.json')\n"
        assert "FS003" not in rules_hit(analyze_source(good, module="repro.service.cache"))

    def test_non_service_write_passes(self):
        source = "h = open('x.json', 'w')\n"
        assert "FS003" not in rules_hit(analyze_source(source, module="repro.io"))


class TestUnbudgetedHotLoopRule:
    def test_unbudgeted_while_in_simulation_flagged(self):
        source = "def run(x):\n    while x > 0:\n        x -= 1\n"
        assert "FS004" in rules_hit(
            analyze_source(source, module="repro.simulation.fake")
        )

    def test_unbudgeted_while_in_graph_flagged(self):
        source = "def run(x):\n    while x > 0:\n        x -= 1\n"
        assert "FS004" in rules_hit(analyze_source(source, module="repro.graph.fake"))

    def test_budget_name_in_loop_passes(self):
        source = (
            "def run(x, budget):\n"
            "    while x > 0:\n"
            "        budget.checkpoint()\n"
            "        x -= 1\n"
        )
        assert "FS004" not in rules_hit(
            analyze_source(source, module="repro.simulation.fake")
        )

    def test_poll_call_in_loop_passes(self):
        source = (
            "def run(x, quota):\n"
            "    while x > 0:\n"
            "        quota.tick(1)\n"
            "        x -= 1\n"
        )
        assert "FS004" not in rules_hit(
            analyze_source(source, module="repro.graph.fake")
        )

    def test_shifted_range_for_loop_flagged(self):
        source = "def run(n):\n    for s in range(1 << n):\n        pass\n"
        assert "FS004" in rules_hit(analyze_source(source, module="repro.graph.fake"))

    def test_plain_range_for_loop_passes(self):
        source = "def run(n):\n    for s in range(n):\n        pass\n"
        assert "FS004" not in rules_hit(
            analyze_source(source, module="repro.graph.fake")
        )

    def test_outside_hot_modules_passes(self):
        source = "def run(x):\n    while x > 0:\n        x -= 1\n"
        for module in ("repro.service.engine", "repro.data.database", None):
            assert "FS004" not in rules_hit(analyze_source(source, module=module))

    def test_audited_suppression_is_recorded(self):
        source = (
            "def run(x):\n"
            "    while x > 0:  # repro-lint: disable=FS004 -- bounded by x\n"
            "        x -= 1\n"
        )
        result = analyze_source(source, module="repro.graph.fake")
        assert "FS004" not in rules_hit(result)
        assert any(
            s.violation.rule == "FS004" and s.justification == "bounded by x"
            for s in result.suppressed
        )


class TestLayeringRules:
    def test_upward_module_level_import_flagged(self):
        project = Project()
        project.add_source(
            "from repro.service.engine import AssessmentEngine\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        result = project.run()
        assert "LY001" in {v.rule for v in result.violations}

    def test_lazy_upward_import_reported_as_ly002(self):
        project = Project()
        project.add_source(
            "def f():\n    from repro.core.chain import chain_from_space\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        result = project.run()
        hits = {v.rule for v in result.violations}
        assert "LY002" in hits and "LY001" not in hits

    def test_downward_import_passes(self):
        project = Project()
        project.add_source(
            "from repro.data.database import FrequencyProfile\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        result = project.run()
        assert not {v.rule for v in result.violations} & {"LY001", "LY002"}

    def test_cycle_detected(self):
        project = Project()
        project.add_source(
            "import repro.beliefs.order\n",
            path="src/repro/mining/fake_a.py",
            module="repro.mining.fake_a",
        )
        project.add_source(
            "import repro.mining.fake_a\n",
            path="src/repro/beliefs/fake_b.py",
            module="repro.beliefs.order",
        )
        result = project.run()
        assert "LY003" in {v.rule for v in result.violations}

    def test_dot_output(self):
        from repro.analysis.lint.rules_layering import layering_dot

        project = Project()
        project.add_source(
            "from repro.data.database import FrequencyProfile\n",
            path="src/repro/graph/fake.py",
            module="repro.graph.fake",
        )
        dot = layering_dot(project.contexts)
        assert dot.startswith("digraph layering {")
        assert '"graph" -> "data"' in dot


class TestSuppressions:
    def test_line_suppression_with_justification(self):
        source = "x = 0.5  # repro-lint: disable=EX001 -- documented boundary\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" not in rules_hit(result)
        assert any(
            s.violation.rule == "EX001" and s.justification == "documented boundary"
            for s in result.suppressed
        )

    def test_next_line_suppression(self):
        source = "# repro-lint: disable-next-line=EX001\nx = 0.5\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" not in rules_hit(result)

    def test_file_suppression(self):
        source = "# repro-lint: disable-file=EX001\nx = 0.5\ny = 1.5\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" not in rules_hit(result)
        assert len(result.suppressed) == 2

    def test_function_suppression_scoped_to_body(self):
        source = (
            "def f():  # repro-lint: disable-function=EX001\n"
            "    return 0.5\n"
            "x = 1.5\n"
        )
        result = analyze_source(source, module=EXACT_MOD)
        lines = [v.line for v in result.violations if v.rule == "EX001"]
        assert lines == [3]

    def test_suppression_of_other_rule_does_not_mask(self):
        source = "x = 0.5  # repro-lint: disable=EX002\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert "EX001" in rules_hit(result)

    def test_disable_all(self):
        source = "x = 0.5  # repro-lint: disable=all\n"
        result = analyze_source(source, module=EXACT_MOD)
        assert not result.violations


class TestAnalyzerCli:
    def test_registry_has_all_families(self):
        Project()  # force registration
        families = {rule.family for rule in REGISTRY.values()}
        assert families >= {"exactness", "determinism", "fault-safety", "layering"}

    def test_shipped_tree_is_clean(self):
        root = Path(__file__).resolve().parent.parent
        result = lint_paths(
            [root / "src", root / "benchmarks", root / "tests"]
        )
        assert result.clean, "\n".join(v.render() for v in result.violations)

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert lint_main([str(dirty)]) == 1
        assert lint_main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_json_report_schema_matches_snapshot(self, tmp_path, capsys):
        import json

        target = tmp_path / "f.py"
        target.write_text("x = 1\n")
        assert lint_main(["--format", "json", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        root = Path(__file__).resolve().parent.parent
        snapshot = json.loads((root / "BENCH_lint.json").read_text())
        assert set(payload) == set(snapshot["report"])
        assert snapshot["report"]["clean"] is True

    def test_json_counts(self):
        result = analyze_source("x = 0.5\ny = 1 / 2\n", module=EXACT_MOD)
        payload = result_to_json(result)
        assert payload["violation_counts"]["EX001"] == 1
        assert payload["violation_counts"]["EX002"] == 1
        assert payload["clean"] is False


# ---------------------------------------------------------------------------
# Whole-program flow layer (call graph, CFG, dataflow, CC/FS005/DT004)
# ---------------------------------------------------------------------------

import ast as _ast

from repro.analysis.flow import FlowProgram
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.dataflow import ForwardAnalysis, solve


def _flow_result(*files):
    """Run the full linter over in-memory (source, path, module) files."""
    project = Project()
    for source, path, module in files:
        project.add_source(source, path=path, module=module)
    return project.run()


def _flow_program(*files):
    project = Project()
    for source, path, module in files:
        project.add_source(source, path=path, module=module)
    return FlowProgram(project.contexts)


class TestCallGraph:
    SOURCE = """
import threading
from repro.service.other import helper

class Store:
    def __init__(self):
        self.rows = []

    def lookup(self):
        return self.rows

class Engine:
    def __init__(self):
        self.store = Store()

    def run_once(self):
        self.store.lookup()
        helper()
        self._local()
        threading.Thread(target=self._beat).start()

    def _local(self):
        pass

    def _beat(self):
        pass
"""
    OTHER = "def helper():\n    pass\n"

    def _graph(self):
        return _flow_program(
            (self.SOURCE, "src/repro/service/fake_cg.py", "repro.service.fake_cg"),
            (self.OTHER, "src/repro/service/other.py", "repro.service.other"),
        ).graph

    def test_self_import_and_typed_attr_resolution(self):
        graph = self._graph()
        callees = graph.callees("repro.service.fake_cg.Engine.run_once")
        assert "repro.service.fake_cg.Store.lookup" in callees  # self.store typed
        assert "repro.service.other.helper" in callees  # from-import
        assert "repro.service.fake_cg.Engine._local" in callees  # self method

    def test_constructor_resolves_to_init(self):
        graph = self._graph()
        callees = graph.callees("repro.service.fake_cg.Engine.__init__")
        assert "repro.service.fake_cg.Store.__init__" in callees

    def test_thread_target_recorded(self):
        graph = self._graph()
        assert "repro.service.fake_cg.Engine._beat" in graph.thread_targets

    def test_dunder_never_matches_by_name(self):
        source = (
            "class Base:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "class Child:\n"
            "    def __init__(self):\n"
            "        super().__init__()\n"
        )
        graph = _flow_program(
            (source, "src/repro/service/fake_sup.py", "repro.service.fake_sup")
        ).graph
        callees = graph.callees("repro.service.fake_sup.Child.__init__")
        assert "repro.service.fake_sup.Base.__init__" not in callees

    def test_ubiquitous_names_skip_by_name_fallback(self):
        source = (
            "class Cache:\n"
            "    def get(self, key):\n"
            "        return key\n"
            "def f(headers):\n"
            "    return headers.get('x')\n"
        )
        graph = _flow_program(
            (source, "src/repro/service/fake_ub.py", "repro.service.fake_ub")
        ).graph
        assert "repro.service.fake_ub.Cache.get" not in graph.callees(
            "repro.service.fake_ub.f"
        )

    def test_local_constructor_types_resolve(self):
        source = (
            "class Probe:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "    def fire(self):\n"
            "        pass\n"
            "def f():\n"
            "    probe = Probe()\n"
            "    probe.fire()\n"
        )
        graph = _flow_program(
            (source, "src/repro/service/fake_loc.py", "repro.service.fake_loc")
        ).graph
        assert "repro.service.fake_loc.Probe.fire" in graph.callees(
            "repro.service.fake_loc.f"
        )


class TestControlFlowGraph:
    @staticmethod
    def _fn(source):
        return _ast.parse(source).body[0]

    def test_if_branches_and_join(self):
        cfg = build_cfg(
            self._fn("def f(x):\n    if x:\n        a = 1\n    else:\n        a = 2\n    return a\n")
        )
        branch = next(
            b for b in cfg.blocks
            if any(isinstance(s, _ast.If) for s in b.statements)
        )
        assert len(branch.successors) == 2

    def test_while_loops_back(self):
        cfg = build_cfg(self._fn("def f(x):\n    while x:\n        x -= 1\n    return x\n"))
        head = next(
            b for b in cfg.blocks
            if any(isinstance(s, _ast.While) for s in b.statements)
        )
        assert len(head.successors) == 2  # body + fall-through
        body = next(
            b for b in cfg.blocks
            if any(isinstance(s, _ast.AugAssign) for s in b.statements)
        )
        assert head.index in body.successors  # back edge

    def test_return_edges_to_exit(self):
        cfg = build_cfg(self._fn("def f(x):\n    if x:\n        return 1\n    return 2\n"))
        returners = [
            b for b in cfg.blocks
            if any(isinstance(s, _ast.Return) for s in b.statements)
        ]
        assert returners and all(cfg.exit in b.successors for b in returners)


class _DefinedNames(ForwardAnalysis):
    """Must-analysis: names assigned on every path (intersection join)."""

    def initial(self):
        return frozenset()

    def join(self, left, right):
        return left & right

    def transfer(self, statement, state):
        if isinstance(statement, _ast.Assign):
            names = {
                t.id for t in statement.targets if isinstance(t, _ast.Name)
            }
            return state | names
        return state


class TestDataflow:
    def test_intersection_join_drops_one_sided_definitions(self):
        fn = _ast.parse(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "        b = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ).body[0]
        cfg = build_cfg(fn)
        states = solve(cfg, _DefinedNames())
        returner = next(
            b for b in cfg.blocks
            if any(isinstance(s, _ast.Return) for s in b.statements)
        )
        assert "a" in states[returner.index]
        assert "b" not in states[returner.index]

    def test_loop_reaches_fixpoint(self):
        fn = _ast.parse(
            "def f(x):\n"
            "    while x:\n"
            "        a = 1\n"
            "    return x\n"
        ).body[0]
        cfg = build_cfg(fn)
        states = solve(cfg, _DefinedNames())  # must terminate
        assert cfg.exit in states


RACY_WORKER = """
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def spawn(self):
        threading.Thread(target=self._bump).start()
        threading.Thread(target=self._read).start()

    def _bump(self):
        self._count += 1

    def _read(self):
        value = self._count
        return value
"""

GUARDED_WORKER = """
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def spawn(self):
        threading.Thread(target=self._bump).start()
        threading.Thread(target=self._read).start()

    def _bump(self):
        with self._lock:
            self._count += 1

    def _read(self):
        with self._lock:
            value = self._count
        return value
"""


class TestLocksetRaces:
    def test_unguarded_shared_field_flagged(self):
        result = _flow_result(
            (RACY_WORKER, "src/repro/service/fake_w.py", "repro.service.fake_w")
        )
        cc = [v for v in result.violations if v.rule == "CC001"]
        assert cc, [v.render() for v in result.violations]
        assert "_count" in cc[0].message

    def test_consistent_lock_passes(self):
        result = _flow_result(
            (GUARDED_WORKER, "src/repro/service/fake_w.py", "repro.service.fake_w")
        )
        assert "CC001" not in {v.rule for v in result.violations}

    def test_witness_carries_two_chains(self):
        result = _flow_result(
            (RACY_WORKER, "src/repro/service/fake_w.py", "repro.service.fake_w")
        )
        witness = next(
            v.witness for v in result.violations if v.rule == "CC001"
        )
        assert witness["field"].endswith("Worker._count")
        chains = [a["call_chain"] for a in witness["accesses"]]
        assert len(chains) == 2 and all(chains)

    def test_caller_held_lock_propagates_into_callee(self):
        source = """
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def spawn(self):
        threading.Thread(target=self._locked_bump).start()
        threading.Thread(target=self._locked_read).start()

    def _locked_bump(self):
        with self._lock:
            self._store()

    def _store(self):
        self._count += 1

    def _locked_read(self):
        with self._lock:
            return self._count
"""
        result = _flow_result(
            (source, "src/repro/service/fake_w.py", "repro.service.fake_w")
        )
        assert "CC001" not in {v.rule for v in result.violations}

    def test_out_of_scope_module_ignored(self):
        result = _flow_result(
            (RACY_WORKER, "src/repro/graph/fake_w.py", "repro.graph.fake_w")
        )
        assert "CC001" not in {v.rule for v in result.violations}


RACY_GLOBAL = """
import threading

_LOCK = threading.Lock()
_STATE = None

def spawn():
    threading.Thread(target=_set).start()
    threading.Thread(target=_get).start()

def _set():
    global _STATE
    _STATE = 1

def _get():
    return _STATE
"""

GUARDED_GLOBAL = """
import threading

_LOCK = threading.Lock()
_STATE = None

def spawn():
    threading.Thread(target=_set).start()
    threading.Thread(target=_get).start()

def _set():
    global _STATE
    with _LOCK:
        _STATE = 1

def _get():
    with _LOCK:
        return _STATE
"""


class TestGlobalRaces:
    def test_unguarded_global_flagged(self):
        result = _flow_result(
            (RACY_GLOBAL, "src/repro/service/fake_g.py", "repro.service.fake_g")
        )
        assert "CC002" in {v.rule for v in result.violations}

    def test_guarded_global_passes(self):
        result = _flow_result(
            (GUARDED_GLOBAL, "src/repro/service/fake_g.py", "repro.service.fake_g")
        )
        assert "CC002" not in {v.rule for v in result.violations}


class TestBudgetCoverage:
    PATH = "src/repro/service/pool.py"
    MODULE = "repro.service.pool"

    def test_unbudgeted_chain_flagged(self):
        source = (
            "def run_batch(jobs):\n"
            "    _drain(jobs)\n"
            "def _drain(jobs):\n"
            "    while jobs:\n"
            "        jobs.pop()\n"
        )
        result = _flow_result((source, self.PATH, self.MODULE))
        fs = [v for v in result.violations if v.rule == "FS005"]
        assert fs and "_drain" in fs[0].message
        assert fs[0].witness["entry_chain"][0] == "repro.service.pool.run_batch"

    def test_direct_poll_covers(self):
        source = (
            "def run_batch(jobs, budget):\n"
            "    while jobs:\n"
            "        budget.checkpoint()\n"
            "        jobs.pop()\n"
        )
        result = _flow_result((source, self.PATH, self.MODULE))
        assert "FS005" not in {v.rule for v in result.violations}

    def test_transitively_polling_callee_covers(self):
        source = (
            "def run_batch(jobs):\n"
            "    while jobs:\n"
            "        _step(jobs)\n"
            "def _step(jobs):\n"
            "    budget = _grab()\n"
            "    budget.checkpoint()\n"
            "def _grab():\n"
            "    return None\n"
        )
        result = _flow_result((source, self.PATH, self.MODULE))
        assert "FS005" not in {v.rule for v in result.violations}
        program = _flow_program((source, self.PATH, self.MODULE))
        kinds = {f.function: f.coverage for f in program.budget.findings()}
        assert kinds["repro.service.pool.run_batch"] == "callee"

    def test_budget_aware_caller_amortizes(self):
        source = (
            "def run_batch(jobs, budget):\n"
            "    budget.checkpoint()\n"
            "    _drain(jobs)\n"
            "def _drain(jobs):\n"
            "    while jobs:\n"
            "        jobs.pop()\n"
        )
        result = _flow_result((source, self.PATH, self.MODULE))
        assert "FS005" not in {v.rule for v in result.violations}
        program = _flow_program((source, self.PATH, self.MODULE))
        kinds = {f.function: f.coverage for f in program.budget.findings()}
        assert kinds["repro.service.pool._drain"] == "amortized"

    def test_unreachable_loop_not_flagged(self):
        source = (
            "def helper(jobs):\n"
            "    while jobs:\n"
            "        jobs.pop()\n"
        )
        result = _flow_result((source, self.PATH, self.MODULE))
        assert "FS005" not in {v.rule for v in result.violations}


TAINTED_FP = """
import time

def make_fingerprint(payload):
    stamp = time.time()
    tag = payload + str(stamp)
    return compute_fingerprint(tag)

def compute_fingerprint(data):
    return hash(data)
"""

SET_ORDER_FP = """
def items_fingerprint(items):
    order = list(set(items))
    return compute_fingerprint(order)

def compute_fingerprint(data):
    return hash(data)
"""

SANITIZED_FP = """
def items_fingerprint(items):
    order = sorted(set(items))
    return compute_fingerprint(order)

def compute_fingerprint(data):
    return hash(data)
"""

INTERPROC_FP = """
import time

def outer():
    stamp = time.time()
    return wrap(stamp)

def wrap(value):
    return compute_fingerprint(value)

def compute_fingerprint(data):
    return hash(data)
"""


class TestTaintFlow:
    PATH = "src/repro/recipe/fake_fp.py"
    MODULE = "repro.recipe.fake_fp"

    def _rules(self, source):
        result = _flow_result((source, self.PATH, self.MODULE))
        return {v.rule for v in result.violations}, result

    def test_wall_clock_into_fingerprint_flagged(self):
        rules, result = self._rules(TAINTED_FP)
        assert "DT004" in rules
        finding = next(v for v in result.violations if v.rule == "DT004")
        assert "time.time()" in finding.message
        assert finding.witness["sink"] == "compute_fingerprint"

    def test_set_iteration_order_flagged(self):
        rules, _ = self._rules(SET_ORDER_FP)
        assert "DT004" in rules

    def test_sorted_sanitizes(self):
        rules, _ = self._rules(SANITIZED_FP)
        assert "DT004" not in rules

    def test_taint_crosses_function_boundary(self):
        rules, result = self._rules(INTERPROC_FP)
        assert "DT004" in rules
        finding = next(v for v in result.violations if v.rule == "DT004")
        assert finding.witness["source"]["label"] == "time.time()"


class TestChangedOnly:
    def _git(self, cwd, *args):
        import subprocess

        subprocess.run(
            ["git", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                "PATH": "/usr/bin:/bin",
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(cwd),
            },
        )

    def test_changed_only_lints_only_dirty_files(self, tmp_path, monkeypatch, capsys):
        self._git(tmp_path, "init", "-q")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("x = 1\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--changed-only", "--format", "json", "."]) == 1
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 1
        assert payload["violation_counts"] == {"FS001": 1}
        assert payload["flow"] is None  # changed-only implies --no-flow

    def test_changed_only_clean_exit_zero(self, tmp_path, monkeypatch, capsys):
        self._git(tmp_path, "init", "-q")
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--changed-only", "."]) == 0
        capsys.readouterr()

    def test_changed_only_outside_git_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "a.py").write_text("x = 1\n")
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
        assert lint_main(["--changed-only", "."]) == 2
        capsys.readouterr()

    def test_untracked_files_are_linted(self, tmp_path, monkeypatch, capsys):
        self._git(tmp_path, "init", "-q")
        (tmp_path / "a.py").write_text("x = 1\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        fresh = tmp_path / "fresh.py"
        fresh.write_text("try:\n    pass\nexcept:\n    pass\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--changed-only", "."]) == 1
        capsys.readouterr()


class TestFlowReportSchema:
    def test_flow_stats_in_project_result(self):
        result = _flow_result(
            ("x = 1\n", "src/repro/service/fake_s.py", "repro.service.fake_s")
        )
        assert result.flow_stats is not None
        assert set(result.flow_stats) == {
            "call_graph",
            "thread_roots",
            "budget_coverage",
            "taint",
        }

    def test_no_flow_project_skips_flow_rules(self):
        project = Project(flow=False)
        project.add_source(
            RACY_WORKER,
            path="src/repro/service/fake_w.py",
            module="repro.service.fake_w",
        )
        result = project.run()
        assert "CC001" not in {v.rule for v in result.violations}
        assert result.flow_stats is None

    def test_witness_lands_in_json_payload(self):
        result = _flow_result(
            (RACY_WORKER, "src/repro/service/fake_w.py", "repro.service.fake_w")
        )
        payload = result_to_json(result)
        entries = [v for v in payload["violations"] if v["rule"] == "CC001"]
        assert entries and "witness" in entries[0]
        assert entries[0]["witness"]["accesses"]

"""Unit tests for Similarity-by-Sampling (Figure 13)."""

import numpy as np
import pytest

from repro.data import FrequencyProfile
from repro.errors import RecipeError
from repro.recipe import similarity_by_sampling


@pytest.fixture
def spread_profile():
    """Well-separated frequencies so sampled gaps behave regularly."""
    return FrequencyProfile({i: 100 * i for i in range(1, 10)}, 2000)


class TestSimilarityBySampling:
    def test_point_structure(self, spread_profile, rng):
        points = similarity_by_sampling(spread_profile, [0.2, 0.6], n_samples=4, rng=rng)
        assert [p.fraction for p in points] == [0.2, 0.6]
        for point in points:
            assert 0.0 <= point.alpha_mean <= 1.0
            assert point.alpha_std >= 0.0
            assert point.delta_mean >= 0.0

    def test_full_sample_is_fully_compliant(self, spread_profile, rng):
        (point,) = similarity_by_sampling(spread_profile, [1.0], n_samples=2, rng=rng)
        # A 100% sample reproduces the true frequencies exactly, and the
        # median-gap interval around the truth always contains the truth.
        assert point.alpha_mean == pytest.approx(1.0)
        assert point.alpha_std == pytest.approx(0.0)

    def test_works_on_transaction_databases(self, bigmart_db, rng):
        points = similarity_by_sampling(bigmart_db, [0.5], n_samples=3, rng=rng)
        assert len(points) == 1
        assert 0.0 <= points[0].alpha_mean <= 1.0

    def test_mean_gap_at_least_as_compliant(self, spread_profile):
        # Wider (mean-gap) intervals can only increase compliancy.
        median_points = similarity_by_sampling(
            spread_profile, [0.3], n_samples=10, rng=np.random.default_rng(5)
        )
        mean_points = similarity_by_sampling(
            spread_profile,
            [0.3],
            n_samples=10,
            rng=np.random.default_rng(5),
            use_mean_gap=True,
        )
        assert mean_points[0].alpha_mean >= median_points[0].alpha_mean - 1e-9

    def test_degenerate_sample_handled(self, rng):
        # A tiny database whose samples may collapse to one group.
        profile = FrequencyProfile({1: 1, 2: 1, 3: 1}, 3)
        points = similarity_by_sampling(profile, [0.34], n_samples=3, rng=rng)
        assert len(points) == 1

    def test_invalid_sample_count(self, spread_profile, rng):
        with pytest.raises(RecipeError):
            similarity_by_sampling(spread_profile, [0.5], n_samples=0, rng=rng)

    def test_unsupported_source_rejected(self, rng):
        with pytest.raises(RecipeError):
            similarity_by_sampling(object(), [0.5], rng=rng)

"""Unit tests for the transaction-database substrate."""

import pytest

from repro.data import FrequencyProfile, TransactionDatabase
from repro.data.database import FrequencySource
from repro.errors import EmptyDatabaseError, InvalidTransactionError


class TestTransactionDatabase:
    def test_basic_construction(self):
        db = TransactionDatabase([[1, 2], [2, 3]])
        assert len(db) == 2
        assert db.domain == frozenset({1, 2, 3})

    def test_transactions_are_frozensets(self):
        db = TransactionDatabase([[1, 1, 2]])
        assert db[0] == frozenset({1, 2})

    def test_empty_transaction_rejected(self):
        with pytest.raises(InvalidTransactionError, match="empty"):
            TransactionDatabase([[1], []])

    def test_explicit_domain_allows_zero_frequency_items(self):
        db = TransactionDatabase([[1]], domain=[1, 2, 3])
        assert db.frequency(2) == 0.0
        assert db.domain == frozenset({1, 2, 3})

    def test_items_outside_domain_rejected(self):
        with pytest.raises(InvalidTransactionError, match="outside"):
            TransactionDatabase([[1, 9]], domain=[1, 2])

    def test_frequency_matches_definition(self):
        db = TransactionDatabase([[1, 2], [2], [2, 3], [3]])
        assert db.frequency(2) == 0.75
        assert db.frequency(1) == 0.25
        assert db.frequency(3) == 0.5

    def test_frequencies_covers_whole_domain(self):
        db = TransactionDatabase([[1]], domain=[1, 2])
        assert db.frequencies() == {1: 1.0, 2: 0.0}

    def test_item_count(self):
        db = TransactionDatabase([[1, 2], [2]])
        assert db.item_count(2) == 2
        assert db.item_count(99) == 0

    def test_iteration_preserves_order(self):
        rows = [[1], [2], [1, 2]]
        db = TransactionDatabase(rows)
        assert list(db) == [frozenset(r) for r in rows]

    def test_equality_and_hash(self):
        a = TransactionDatabase([[1, 2], [2]])
        b = TransactionDatabase([[2, 1], [2]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != TransactionDatabase([[1, 2]])

    def test_repr_mentions_sizes(self):
        db = TransactionDatabase([[1, 2], [2]])
        assert "n_transactions=2" in repr(db)

    def test_restrict_projects_and_drops_empty(self):
        db = TransactionDatabase([[1, 2], [3], [2, 3]])
        restricted = db.restrict([1, 2])
        assert len(restricted) == 2
        assert restricted.domain == frozenset({1, 2})

    def test_to_profile_roundtrips_counts(self):
        db = TransactionDatabase([[1, 2], [2], [3]], domain=[1, 2, 3, 4])
        profile = db.to_profile()
        assert profile.item_count(2) == 2
        assert profile.item_count(4) == 0
        assert profile.n_transactions == 3
        assert profile.frequencies() == db.frequencies()

    def test_satisfies_frequency_source_protocol(self):
        assert isinstance(TransactionDatabase([[1]]), FrequencySource)

    def test_string_items_supported(self):
        db = TransactionDatabase([["milk", "bread"], ["bread"]])
        assert db.frequency("bread") == 1.0


class TestFrequencyProfile:
    def test_basic(self):
        profile = FrequencyProfile({1: 3, 2: 1}, 4)
        assert profile.frequency(1) == 0.75
        assert profile.domain == frozenset({1, 2})
        assert len(profile) == 2

    def test_zero_transactions_rejected(self):
        with pytest.raises(EmptyDatabaseError):
            FrequencyProfile({1: 0}, 0)

    def test_count_bounds_validated(self):
        with pytest.raises(InvalidTransactionError):
            FrequencyProfile({1: 5}, 4)
        with pytest.raises(InvalidTransactionError):
            FrequencyProfile({1: -1}, 4)

    def test_from_frequencies_rounds(self):
        profile = FrequencyProfile.from_frequencies({1: 0.5, 2: 0.249}, 1000)
        assert profile.item_count(1) == 500
        assert profile.item_count(2) == 249

    def test_counts_returns_copy(self):
        profile = FrequencyProfile({1: 1}, 2)
        counts = profile.counts
        counts[1] = 99
        assert profile.item_count(1) == 1

    def test_equality(self):
        assert FrequencyProfile({1: 1}, 2) == FrequencyProfile({1: 1}, 2)
        assert FrequencyProfile({1: 1}, 2) != FrequencyProfile({1: 1}, 3)

    def test_satisfies_frequency_source_protocol(self):
        assert isinstance(FrequencyProfile({1: 1}, 2), FrequencySource)

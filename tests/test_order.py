"""Unit tests for the belief-function partial orders (Definitions 7 and 9)."""

import pytest

from repro.beliefs import (
    ignorant_belief,
    interval_belief,
    is_compliancy_refinement,
    is_refinement,
    point_belief,
    uniform_width_belief,
)
from repro.errors import DomainMismatchError


class TestRefinement:
    def test_point_refines_everything(self, bigmart_frequencies):
        point = point_belief(bigmart_frequencies)
        wide = uniform_width_belief(bigmart_frequencies, 0.1)
        ignorant = ignorant_belief(bigmart_frequencies)
        assert is_refinement(point, wide)
        assert is_refinement(wide, ignorant)
        assert is_refinement(point, ignorant)

    def test_not_antisymmetric_violation(self, bigmart_frequencies):
        wide = uniform_width_belief(bigmart_frequencies, 0.1)
        point = point_belief(bigmart_frequencies)
        assert not is_refinement(wide, point)

    def test_reflexive(self, belief_h):
        assert is_refinement(belief_h, belief_h)

    def test_incomparable(self):
        a = interval_belief({1: (0.0, 0.5)})
        b = interval_belief({1: (0.4, 1.0)})
        assert not is_refinement(a, b)
        assert not is_refinement(b, a)

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            is_refinement(interval_belief({1: 0.5}), interval_belief({2: 0.5}))


class TestCompliancyRefinement:
    def test_smaller_compliant_set_with_same_intervals(self, bigmart_frequencies):
        beta1 = uniform_width_belief(bigmart_frequencies, 0.05)
        # beta2 guesses item 1 wrong but keeps everything else identical.
        beta2 = beta1.replace({1: (0.9, 1.0)})
        assert is_compliancy_refinement(beta2, beta1, bigmart_frequencies)
        assert not is_compliancy_refinement(beta1, beta2, bigmart_frequencies)

    def test_sharper_compliant_guess_breaks_order(self, bigmart_frequencies):
        beta1 = uniform_width_belief(bigmart_frequencies, 0.05)
        # beta2 is compliant on a subset but *sharpens* item 2's interval,
        # violating condition (ii) of Definition 9.
        beta2 = beta1.replace({1: (0.9, 1.0), 2: 0.4})
        assert not is_compliancy_refinement(beta2, beta1, bigmart_frequencies)

    def test_explicit_compliant_sets(self, bigmart_frequencies):
        beta = uniform_width_belief(bigmart_frequencies, 0.05)
        assert is_compliancy_refinement(
            beta, beta, bigmart_frequencies, compliant2=[1, 2], compliant1=[1, 2, 3]
        )
        assert not is_compliancy_refinement(
            beta, beta, bigmart_frequencies, compliant2=[1, 4], compliant1=[1, 2, 3]
        )

    def test_reflexive(self, belief_h, bigmart_frequencies):
        assert is_compliancy_refinement(belief_h, belief_h, bigmart_frequencies)

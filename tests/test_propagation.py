"""Unit tests for degree-1 propagation (Figure 7)."""

import pytest

from repro.beliefs import point_belief
from repro.errors import GraphError
from repro.graph import ExplicitMappingSpace, propagate_degree_one, space_from_frequencies


class TestStaircase:
    def test_everything_forced(self, staircase_space):
        result = propagate_degree_one(staircase_space)
        assert result.forced == {0: 0, 1: 1, 2: 2, 3: 3}
        assert result.n_forced == 4
        assert not result.remaining_outdegrees
        assert not result.infeasible

    def test_forced_cracks(self, staircase_space):
        result = propagate_degree_one(staircase_space)
        assert result.forced_cracks(staircase_space) == 4


class TestReverseStaircase:
    def test_anon_side_degree_one_also_propagates(self):
        # Mirror image of Figure 6(a): anonymized node 4' has degree 1.
        space = ExplicitMappingSpace(
            items=(1, 2, 3, 4),
            anonymized=("1'", "2'", "3'", "4'"),
            adjacency=[[0, 1, 2, 3], [1, 2, 3], [2, 3], [3]],
            true_partner_of=[0, 1, 2, 3],
        )
        result = propagate_degree_one(space)
        assert result.forced == {0: 0, 1: 1, 2: 2, 3: 3}


class TestNoPropagation:
    def test_two_blocks_untouched(self, two_blocks_space):
        # Figure 6(b): min degree is 2, so propagation does nothing even
        # though the edge (2', 3) is in no perfect matching.
        result = propagate_degree_one(two_blocks_space)
        assert not result.forced
        assert result.remaining_outdegrees == {0: 2, 1: 2, 2: 3, 3: 2}

    def test_complete_graph_untouched(self, bigmart_frequencies):
        from repro.beliefs import ignorant_belief

        space = space_from_frequencies(
            ignorant_belief(bigmart_frequencies), bigmart_frequencies
        )
        result = propagate_degree_one(space)
        assert not result.forced
        assert len(result.remaining_outdegrees) == 6


class TestInfeasibility:
    def test_empty_neighbourhood_flagged(self):
        space = ExplicitMappingSpace(
            items=(1, 2),
            anonymized=("a", "b"),
            adjacency=[[0], [0]],
            true_partner_of=[0, 1],
        )
        result = propagate_degree_one(space)
        assert result.infeasible

    def test_cascade_can_reveal_infeasibility(self):
        # Item 1 forces anon 0; items 2 and 3 then compete for anon 1.
        space = ExplicitMappingSpace(
            items=(1, 2, 3),
            anonymized=("a", "b", "c"),
            adjacency=[[0], [0, 1], [0, 1]],
            true_partner_of=[0, 1, 2],
        )
        result = propagate_degree_one(space)
        assert result.infeasible


class TestFrequencySpacePropagation:
    def test_point_valued_singletons_forced(self, bigmart_frequencies):
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        result = propagate_degree_one(space)
        # Items 2 (freq 0.4) and 5 (freq 0.3) are in singleton groups.
        forced_items = {space.items[i] for i in result.forced}
        assert forced_items == {2, 5}
        assert result.forced_cracks(space) == 2

    def test_edge_guard(self, bigmart_space_h):
        with pytest.raises(GraphError, match="guard"):
            propagate_degree_one(bigmart_space_h, max_edges=3)


class TestChainedForcing:
    def test_partial_cascade(self):
        # Anon "a" only reaches item 1; after forcing, item 2 becomes
        # degree-1 on "b"; items 3-4 remain a free 2x2 block.
        space = ExplicitMappingSpace(
            items=(1, 2, 3, 4),
            anonymized=("a", "b", "c", "d"),
            adjacency=[[0, 1], [1], [2, 3], [2, 3]],
            true_partner_of=[0, 1, 2, 3],
        )
        result = propagate_degree_one(space)
        assert result.forced == {1: 1, 0: 0}
        assert result.remaining_outdegrees == {2: 2, 3: 2}


class TestForbiddenReporting:
    def test_staircase_reports_consumed_edges(self, staircase_space):
        # Every edge not on the forced diagonal is proven absent.
        result = propagate_degree_one(staircase_space)
        forbidden = {
            (i, j) for i, anons in result.forbidden.items() for j in anons
        }
        assert forbidden == {(1, 0), (2, 0), (2, 1), (3, 0), (3, 1), (3, 2)}
        assert result.n_forbidden == 6

    def test_untouched_graph_reports_nothing(self, two_blocks_space):
        result = propagate_degree_one(two_blocks_space)
        assert result.forbidden == {}
        assert result.n_forbidden == 0

    def test_partial_cascade_forbidden_matches_removals(self):
        space = ExplicitMappingSpace(
            items=(1, 2, 3, 4),
            anonymized=("a", "b", "c", "d"),
            adjacency=[[0, 1], [1], [2, 3], [2, 3]],
            true_partner_of=[0, 1, 2, 3],
        )
        result = propagate_degree_one(space)
        # Forcing (2, "b") removes item 1's other edge (0, "b")... which
        # does not exist; the only consumed edge is (1, 1) seen from item
        # 0's side: anon "b" leaves item 0's candidate set.
        forbidden = {
            (i, j) for i, anons in result.forbidden.items() for j in anons
        }
        assert forbidden == {(0, 1)}

"""Chaos-harness components: fault actions, supervisor, schedule, verifier.

Everything in-process here is tier-1 (fake clocks, fake processes, an
in-process asyncio fake server); the one test that launches a real
``repro-serve`` replica and kills it carries the ``faults`` marker.  The
bounded end-to-end chaos soak lives in ``tests/test_robustness.py``.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import json
import os
import subprocess
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError, ReproError
from repro.io import assessment_to_json
from repro.recipe.assess import Decision, RiskAssessment
from repro.service import faults as faults_module
from repro.service.cache import COMMIT_LOG_NAME, AssessmentCache
from repro.service.chaos import generate_schedule, schedule_digest
from repro.service.faults import (
    FaultInjector,
    FaultRule,
    InjectedCrash,
    clock_skew,
    injected_faults,
)
from repro.service.lease import (
    LeaseState,
    acquire_lease,
    lease_state,
    sweep_stale_leases,
    take_over,
)
from repro.service.loadgen import _ClientStats, _drive_connection
from repro.service.supervisor import (
    ReplicaSupervisor,
    RestartPolicy,
    backoff_delay,
)
from repro.service.verify import verify_run


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Every test must leave the process-wide injector uninstalled."""
    yield
    assert faults_module.current() is None, "test leaked an installed fault injector"
    faults_module.uninstall()


def _assessment(tolerance: float = 0.9) -> RiskAssessment:
    return RiskAssessment(
        decision=Decision.DISCLOSE_POINT_VALUED,
        tolerance=tolerance,
        n_items=4,
        g=3,
    )


def _canonical(assessment: RiskAssessment) -> str:
    return json.dumps(assessment_to_json(assessment), sort_keys=True)


# -- new fault actions ------------------------------------------------------


class TestNewFaultActions:
    def test_enospc_and_fsync_error_carry_errnos(self):
        injector = FaultInjector(
            [
                FaultRule(site="disk", action="enospc"),
                FaultRule(site="sync", action="fsync_error"),
            ]
        )
        with pytest.raises(OSError) as enospc:
            injector.fire("disk")
        assert enospc.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as eio:
            injector.fire("sync")
        assert eio.value.errno == errno.EIO
        injector.fire("disk")  # both rules exhausted
        injector.fire("sync")

    def test_torn_write_truncates_then_crashes(self, tmp_path):
        victim = tmp_path / "artifact.tmp"
        victim.write_bytes(b"x" * 100)
        injector = FaultInjector(
            [FaultRule(site="cache.write.*", action="torn_write", truncate_at=7)]
        )
        with pytest.raises(InjectedCrash):
            injector.fire("cache.write.replace", path=victim)
        assert victim.stat().st_size == 7  # exactly the torn prefix

    def test_torn_write_clamps_to_file_size(self, tmp_path):
        victim = tmp_path / "artifact.tmp"
        victim.write_bytes(b"x" * 10)
        injector = FaultInjector(
            [FaultRule(site="s", action="torn_write", truncate_at=500)]
        )
        with pytest.raises(InjectedCrash):
            injector.fire("s", path=victim)
        assert victim.stat().st_size == 10

    def test_torn_write_without_path_is_plain_crash(self, tmp_path):
        injector = FaultInjector([FaultRule(site="s", action="torn_write")])
        with pytest.raises(InjectedCrash):
            injector.fire("s")  # no path-aware site: nothing to tear

    def test_clock_skew_accumulates_without_raising(self):
        assert clock_skew() == 0.0  # no injector installed
        rules = [
            FaultRule(site="t", action="clock_skew", skew_seconds=1.5, times=2)
        ]
        with injected_faults(rules) as injector:
            injector.fire("t")
            injector.fire("t")
            injector.fire("t")  # exhausted: no further skew
            assert injector.skew_seconds() == pytest.approx(3.0)
            assert clock_skew() == pytest.approx(3.0)
            injector.reset()
            assert clock_skew() == 0.0
        assert clock_skew() == 0.0

    def test_rule_json_roundtrip_all_fields(self):
        rule = FaultRule(
            site="cache.write.replace",
            action="torn_write",
            times=3,
            after=2,
            delay_seconds=0.5,
            exception="FileNotFoundError",
            message="boom",
            truncate_at=42,
            skew_seconds=1.25,
        )
        assert FaultRule.from_json(rule.to_json()) == rule

    def test_new_field_validation(self):
        with pytest.raises(ReproError):
            FaultRule(site="s", action="torn_write", truncate_at=-1)
        with pytest.raises(FormatError):
            FaultRule.from_json({"site": "s", "skew": 1.0})  # unknown key


# -- the commit log ---------------------------------------------------------


class TestCommitLog:
    def test_shared_put_appends_one_line_per_commit(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path, shared=True)
        cache.put("aa", _assessment())
        cache.put("bb", _assessment())
        lines = (tmp_path / COMMIT_LOG_NAME).read_text().splitlines()
        assert lines == [f"aa {os.getpid()}", f"bb {os.getpid()}"]
        assert cache.stats()["disk_commits"] == 2

    def test_unshared_cache_keeps_no_log(self, tmp_path):
        AssessmentCache(directory=tmp_path).put("aa", _assessment())
        assert not (tmp_path / COMMIT_LOG_NAME).exists()

    def test_failed_write_is_not_logged(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path, shared=True)
        with injected_faults([FaultRule(site="cache.write.tmp", action="enospc")]):
            cache.put("aa", _assessment())  # tolerated, not persisted
        assert cache.stats()["write_errors"] == 1
        assert not (tmp_path / COMMIT_LOG_NAME).exists()
        cache.put("aa", _assessment())  # disk healthy again
        assert (tmp_path / COMMIT_LOG_NAME).read_text().count("aa") == 1

    def test_clear_disk_removes_log(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path, shared=True)
        cache.put("aa", _assessment())
        cache.clear(disk=True)
        assert not (tmp_path / COMMIT_LOG_NAME).exists()


# -- lease hardening --------------------------------------------------------


class TestLeaseHardening:
    def _stale_lease(self, path):
        lease = acquire_lease(path, pid=2**22 + 4321)  # vanishingly unlikely pid
        lease._write_payload()
        return lease

    def test_sweep_survives_vanishing_lease(self, tmp_path):
        self._stale_lease(tmp_path / "one.lease")
        self._stale_lease(tmp_path / "two.lease")
        rules = [
            FaultRule(
                site="cache.lease.sweep", exception="FileNotFoundError", times=1
            )
        ]
        with injected_faults(rules):
            # One unlink hits the TOCTOU window; the sweep keeps going.
            assert sweep_stale_leases(tmp_path, stale_after=60.0) == 1
        assert len(list(tmp_path.glob("*.lease"))) == 1
        assert sweep_stale_leases(tmp_path, stale_after=60.0) == 1
        assert not list(tmp_path.glob("*.lease"))

    def test_sweep_tolerates_transient_oserror(self, tmp_path):
        self._stale_lease(tmp_path / "one.lease")
        with injected_faults([FaultRule(site="cache.lease.sweep", times=1)]):
            assert sweep_stale_leases(tmp_path, stale_after=60.0) == 0
        # the next sweep (I/O recovered) removes it
        assert sweep_stale_leases(tmp_path, stale_after=60.0) == 1

    def test_state_oserror_reports_missing(self, tmp_path):
        path = tmp_path / "fp.lease"
        lease = acquire_lease(path)
        with injected_faults([FaultRule(site="cache.lease.state", times=1)]):
            assert lease_state(path, stale_after=60.0).kind == LeaseState.MISSING
            assert lease_state(path, stale_after=60.0).kind == LeaseState.HELD
        lease.release()

    def test_clock_skew_ages_healthy_lease_into_staleness(self, tmp_path):
        path = tmp_path / "fp.lease"
        lease = acquire_lease(path)
        rules = [
            FaultRule(
                site="cache.lease.state",
                action="clock_skew",
                skew_seconds=120.0,
                times=1,
            )
        ]
        with injected_faults(rules):
            state = lease_state(path, stale_after=60.0)
            assert state.kind == LeaseState.STALE  # aged by skew alone
            assert state.info is not None and state.info.owner_alive
        assert lease_state(path, stale_after=60.0).kind == LeaseState.HELD
        lease.release()

    def test_takeover_window_losing_the_race_is_safe(self, tmp_path):
        path = tmp_path / "fp.lease"
        self._stale_lease(path)
        rules = [
            FaultRule(
                site="cache.lease.takeover",
                exception="FileNotFoundError",
                times=1,
            )
        ]
        with injected_faults(rules):
            # The unlink "vanished": the stale file is actually still
            # there, so the exclusive re-create loses — and that is the
            # contract: losing the takeover race never corrupts state.
            assert take_over(path, stale_after=60.0) is None
            taken = take_over(path, stale_after=60.0)
        assert taken is not None and taken.pid == os.getpid()
        taken.release()

    def test_takeover_oserror_backs_off(self, tmp_path):
        path = tmp_path / "fp.lease"
        self._stale_lease(path)
        with injected_faults([FaultRule(site="cache.lease.takeover", times=1)]):
            assert take_over(path, stale_after=60.0) is None
        assert path.exists()  # untouched: no unlink without a clean window

    def test_acquire_lease_surfaces_real_failures(self, tmp_path, monkeypatch):
        real_open = os.open

        def flaky_open(path, flags, *args, **kwargs):
            if str(path).endswith(".lease"):
                raise OSError(errno.ENOSPC, "injected: disk full")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr("repro.service.lease.os.open", flaky_open)
        with pytest.raises(OSError) as failure:
            acquire_lease(tmp_path / "fp.lease")
        assert failure.value.errno == errno.ENOSPC

    def test_acquire_lease_maps_bare_eexist_to_contention(
        self, tmp_path, monkeypatch
    ):
        real_open = os.open

        def eexist_open(path, flags, *args, **kwargs):
            if str(path).endswith(".lease"):
                raise OSError(errno.EEXIST, "injected: bare EEXIST")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr("repro.service.lease.os.open", eexist_open)
        assert acquire_lease(tmp_path / "fp.lease") is None


# -- the supervisor (fake clock, fake processes) ----------------------------


class FakeProcess:
    """A SupervisedProcess stand-in with scriptable death behavior."""

    def __init__(self, ignores_sigterm: bool = False) -> None:
        self.returncode: int | None = None
        self.signals: list[int] = []
        self.ignores_sigterm = ignores_sigterm

    def poll(self) -> int | None:
        return self.returncode

    def wait(self, timeout: float | None = None) -> int:
        if self.returncode is None:
            raise subprocess.TimeoutExpired(cmd="fake-replica", timeout=timeout or 0)
        return self.returncode

    def send_signal(self, sig: int) -> None:
        self.signals.append(sig)
        if not self.ignores_sigterm:
            self.returncode = -int(sig)

    def kill(self) -> None:
        self.returncode = -9


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _fake_fleet(count=1, policy=None, ignores_sigterm=False):
    clock = FakeClock()
    launched: list[tuple[FakeProcess, int, int, int]] = []

    def launcher(index: int, incarnation: int, port_hint: int):
        process = FakeProcess(ignores_sigterm=ignores_sigterm)
        port = 7000 + index if port_hint == 0 else port_hint
        launched.append((process, index, incarnation, port_hint))
        return process, port

    supervisor = ReplicaSupervisor(
        launcher,
        count=count,
        policy=policy,
        seed=11,
        clock=clock,
        sleep=lambda seconds: None,
    )
    return supervisor, clock, launched


class TestBackoffDelay:
    def test_growth_jitter_and_cap(self):
        policy = RestartPolicy(
            initial_delay_seconds=0.1,
            max_delay_seconds=2.0,
            backoff_factor=2.0,
            jitter_fraction=0.25,
        )
        for failures in range(1, 9):
            base = min(2.0, 0.1 * 2.0 ** (failures - 1))
            delay = backoff_delay(policy, failures, seed=1, replica=0, incarnation=1)
            assert base <= delay <= base * 1.25
        # deterministic per (seed, replica, incarnation)
        assert backoff_delay(policy, 3, 1, 0, 1) == backoff_delay(policy, 3, 1, 0, 1)

    def test_policy_validation(self):
        with pytest.raises(ReproError):
            RestartPolicy(initial_delay_seconds=0.0)
        with pytest.raises(ReproError):
            RestartPolicy(backoff_factor=0.5)
        with pytest.raises(ReproError):
            RestartPolicy(jitter_fraction=1.5)
        with pytest.raises(ReproError):
            RestartPolicy(crash_loop_threshold=1)


class TestSupervisorRestarts:
    POLICY = RestartPolicy(
        initial_delay_seconds=0.1,
        max_delay_seconds=2.0,
        backoff_factor=2.0,
        jitter_fraction=0.25,
        crash_loop_window_seconds=100.0,
        crash_loop_threshold=3,
    )

    def test_restart_waits_out_backoff_and_pins_port(self):
        supervisor, clock, launched = _fake_fleet(policy=self.POLICY)
        supervisor.start()
        assert supervisor.ports == [7000]
        launched[0][0].kill()
        clock.now = 1.0
        supervisor.tick()
        state = supervisor._replicas[0]
        assert state.status == "backoff"
        expected = backoff_delay(self.POLICY, 1, 11, 0, 1)
        assert state.next_restart_at == pytest.approx(1.0 + expected)
        supervisor.tick(now=1.0 + expected - 0.001)
        assert state.status == "backoff"  # not yet
        clock.now = 1.0 + expected + 0.001
        supervisor.tick()
        assert state.status == "running" and state.incarnation == 2
        assert supervisor.metrics.counter("restarts") == 1
        # the restarted incarnation was asked to re-bind the same port
        assert launched[1][3] == 7000 and supervisor.ports == [7000]
        assert state.last_returncode == -9
        supervisor.stop(grace_seconds=0.01)

    def test_crash_loop_detection_gives_up_with_report(self):
        supervisor, clock, launched = _fake_fleet(policy=self.POLICY)
        supervisor.start()
        now = 0.0
        for _ in range(3):
            launched[-1][0].kill()
            now += 1.0
            clock.now = now
            supervisor.tick()
            state = supervisor._replicas[0]
            if state.status == "backoff":
                now = state.next_restart_at + 0.001
                clock.now = now
                supervisor.tick()
        assert state.status == "crash_loop"
        assert supervisor.metrics.counter("crash_loops") == 1
        (report,) = supervisor.crash_loop_reports()
        assert report["deaths_in_window"] == 3 and report["threshold"] == 3
        # a crash-looped replica is not restarted again
        clock.now = now + 50.0
        supervisor.tick()
        assert supervisor._replicas[0].status == "crash_loop"
        assert len(launched) == 3
        supervisor.stop(grace_seconds=0.01)

    def test_healthy_window_resets_consecutive_failures(self):
        supervisor, clock, launched = _fake_fleet(policy=self.POLICY)
        supervisor.start()
        launched[0][0].kill()
        clock.now = 1.0
        supervisor.tick()
        clock.now = supervisor._replicas[0].next_restart_at + 0.001
        supervisor.tick()
        assert supervisor._replicas[0].consecutive_failures == 1
        clock.now += self.POLICY.crash_loop_window_seconds + 1.0
        supervisor.tick()  # a full healthy window: earlier deaths were transient
        assert supervisor._replicas[0].consecutive_failures == 0
        supervisor.stop(grace_seconds=0.01)

    def test_stop_escalates_sigterm_to_sigkill(self):
        supervisor, _clock, launched = _fake_fleet(count=2, ignores_sigterm=True)
        supervisor.start()
        supervisor.stop(grace_seconds=0.01)
        assert supervisor.metrics.counter("sigkill_escalations") == 2
        for process, *_ in launched:
            assert process.signals and process.returncode == -9
        assert all(
            state["status"] == "stopped" for state in supervisor.status()["replicas"]
        )

    def test_kill_and_terminate_report_liveness(self):
        supervisor, _clock, launched = _fake_fleet()
        supervisor.start()
        assert supervisor.kill(0) is True
        assert supervisor.kill(0) is False  # already dead
        assert supervisor.terminate(0) is False
        assert supervisor.metrics.counter("kills_delivered") == 1
        supervisor.stop(grace_seconds=0.01)

    def test_status_shape(self):
        supervisor, _clock, _launched = _fake_fleet()
        supervisor.start()
        status = supervisor.status()
        assert {"replicas", "restarts", "crash_loops", "replica_deaths"} <= set(status)
        (replica,) = status["replicas"]
        assert replica["status"] == "running" and replica["incarnation"] == 1
        supervisor.stop(grace_seconds=0.01)


# -- schedule purity --------------------------------------------------------


class TestSchedulePurity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        duration=st.floats(min_value=6.0, max_value=120.0, allow_nan=False),
        replicas=st.integers(min_value=2, max_value=5),
    )
    def test_same_inputs_same_schedule(self, seed, duration, replicas):
        first = generate_schedule(seed, duration, replicas)
        second = generate_schedule(seed, duration, replicas)
        assert first == second
        assert schedule_digest(first) == schedule_digest(second)
        kinds = [event.kind for event in first]
        assert kinds.count("kill") == 3  # the min_kills default
        assert kinds.count("term") == 1
        assert kinds.count("fault_burst") == 1
        assert kinds.count("spike") == 1
        for event in first:
            assert 0 <= event.replica < replicas
            assert 0.15 * duration <= event.at_seconds <= 0.70 * duration + 1e-9
        assert [event.at_seconds for event in first] == sorted(
            event.at_seconds for event in first
        )

    def test_different_seeds_diverge(self):
        assert schedule_digest(generate_schedule(0, 12.0, 2)) != schedule_digest(
            generate_schedule(1, 12.0, 2)
        )

    def test_burst_rules_are_serializable_and_skew_stays_sub_window(self):
        stale = 1.0
        events = generate_schedule(5, 12.0, 3, lease_stale_seconds=stale)
        (burst,) = [event for event in events if event.kind == "fault_burst"]
        assert burst.burst_rules
        for rule in burst.burst_rules:
            assert FaultRule.from_json(rule.to_json()) == rule
            if rule.action == "clock_skew":
                # skew must stay below the staleness window, or a healthy
                # owner would be wrongly taken over (a genuine recompute)
                assert 0.0 < rule.skew_seconds < stale

    def test_input_validation(self):
        with pytest.raises(ReproError):
            generate_schedule(0, 5.0, 2)
        with pytest.raises(ReproError):
            generate_schedule(0, 12.0, 1)


# -- the post-mortem verifier -----------------------------------------------


class TestVerifier:
    def _populate(self, cache_dir: Path) -> tuple[dict[str, str], dict[str, str]]:
        cache = AssessmentCache(directory=cache_dir, shared=True)
        oracle = {}
        for fingerprint, tolerance in (("aa", 0.9), ("bb", 0.5)):
            assessment = _assessment(tolerance)
            cache.put(fingerprint, assessment)
            oracle[fingerprint] = _canonical(assessment)
        return oracle, dict(oracle)

    def _verify(self, cache_dir, oracle, responses, **overrides):
        arguments = dict(
            cache_dir=cache_dir,
            responses=responses,
            response_conflicts=[],
            statuses={200: 4},
            oracle=oracle,
            metric_snapshots=[],
            kills=0,
            max_inflight=8,
            lease_stale_seconds=5.0,
        )
        arguments.update(overrides)
        return verify_run(**arguments)

    def test_clean_run_passes_every_check(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        report = self._verify(tmp_path, oracle, responses)
        assert report.ok, report.to_json()
        assert report.checks["artifacts"] == 2
        assert report.checks["commits_logged"] == 2
        assert report.checks["responses_matching_oracle"] == 2

    def test_duplicate_commit_is_a_violation(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        with open(tmp_path / COMMIT_LOG_NAME, "a") as log:
            log.write(f"aa {os.getpid()}\n")
        report = self._verify(tmp_path, oracle, responses)
        assert [v.kind for v in report.violations] == ["duplicate_compute"]

    def test_commit_without_artifact_is_a_violation(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        with open(tmp_path / COMMIT_LOG_NAME, "a") as log:
            log.write(f"zz {os.getpid()}\n")
        report = self._verify(tmp_path, oracle, responses)
        assert any(v.kind == "commit_without_artifact" for v in report.violations)

    def test_artifact_without_commit_is_benign(self, tmp_path):
        # kill -9 between the rename and the log append leaves exactly
        # this state; the artifact is real, so it is not a violation.
        oracle, responses = self._populate(tmp_path)
        log_path = tmp_path / COMMIT_LOG_NAME
        lines = log_path.read_text().splitlines()
        log_path.write_text("\n".join(lines[:1]) + "\n")
        report = self._verify(tmp_path, oracle, responses)
        assert report.ok, report.to_json()

    def test_orphan_tmp_is_swept_not_flagged(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        (tmp_path / "halfwrite.tmp").write_text("{torn")
        report = self._verify(tmp_path, oracle, responses)
        assert report.ok and report.checks["tmp_recovered"] == 1
        assert not list(tmp_path.glob("*.tmp"))

    def test_live_owner_lease_is_a_leak(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        lease = acquire_lease(tmp_path / "aa.lease")  # this pid: alive
        try:
            report = self._verify(tmp_path, oracle, responses)
            assert any(v.kind == "lease_leak" for v in report.violations)
        finally:
            lease.release()

    def test_tampered_artifact_is_caught(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        artifact = tmp_path / "aa.json"
        payload = json.loads(artifact.read_text())
        payload["assessment"]["tolerance"] = 0.123  # silent bit-flip
        artifact.write_text(json.dumps(payload))
        report = self._verify(tmp_path, oracle, responses)
        assert not report.ok
        assert any(v.kind == "artifact_diverged" for v in report.violations)

    def test_response_divergence_and_bad_statuses(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        responses["aa"] = _canonical(_assessment(0.123))
        report = self._verify(
            tmp_path, oracle, responses, statuses={200: 3, 500: 1}
        )
        kinds = {v.kind for v in report.violations}
        assert {"response_diverged", "server_error"} <= kinds

    def test_unexplained_recomputes_exceed_allowance(self, tmp_path):
        oracle, responses = self._populate(tmp_path)
        snapshots = [{"metrics": {"counters": {"computed": 50}}}]
        report = self._verify(
            tmp_path, oracle, responses, metric_snapshots=snapshots
        )
        assert any(v.kind == "unexplained_recomputes" for v in report.violations)
        # the same excess is fine once kills explain it
        report = self._verify(
            tmp_path, oracle, responses, metric_snapshots=snapshots, kills=6
        )
        assert report.ok, report.to_json()


# -- the reconnecting client ------------------------------------------------


class TestDriveConnectionReconnect:
    def test_dropped_connection_resends_same_request(self):
        received: list[bytes] = []
        connection_count = 0

        async def handler(reader, writer):
            nonlocal connection_count
            connection = connection_count
            connection_count += 1
            try:
                while True:
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = 0
                    for line in head.decode("latin-1").split("\r\n"):
                        name, _, value = line.partition(":")
                        if name.strip().lower() == "content-length":
                            length = int(value.strip())
                    received.append(await reader.readexactly(length))
                    if connection == 0:
                        return  # drop the very first request unanswered
                    body = b'{"ok": true}'
                    writer.write(
                        b"HTTP/1.1 200 OK\r\nContent-Length: "
                        + str(len(body)).encode("latin-1")
                        + b"\r\n\r\n"
                        + body
                    )
                    await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                pass
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

        stats = _ClientStats()
        payloads = [b'{"n": 0}', b'{"n": 1}', b'{"n": 2}']

        async def run():
            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                await _drive_connection(
                    "127.0.0.1",
                    port,
                    payloads,
                    iter(range(3)),
                    stop_at=time.monotonic() + 10.0,
                    max_requests=3,
                    stats=stats,
                )

        asyncio.run(run())
        assert stats.statuses == {200: 3}  # every request eventually answered
        assert stats.reconnects == 1 and stats.errors == 1
        # the unanswered request was re-sent verbatim on the new connection
        assert received[0] == received[1] == payloads[0]
        assert len(received) == 4

    def test_connect_refusal_backs_off_until_deadline(self):
        stats = _ClientStats()

        async def run():
            # a port nothing listens on: every connect attempt fails
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            await _drive_connection(
                "127.0.0.1",
                port,
                [b"{}"],
                iter([0]),
                stop_at=time.monotonic() + 0.3,
                max_requests=1,
                stats=stats,
            )

        asyncio.run(run())
        assert stats.errors >= 1 and stats.statuses == {}


# -- against a real replica (faults job) ------------------------------------


@pytest.mark.faults
class TestKilledReplicaReconnect:
    def test_client_survives_kill_and_supervised_restart(self):
        from repro.service.loadgen import (
            ReplicaPool,
            WorkloadSpec,
            build_payloads,
            request_stream,
        )

        spec = WorkloadSpec(profiles=4, zipf_s=0.5, seed=1)
        payloads = build_payloads(spec)
        stats = _ClientStats()
        with ReplicaPool(count=1, flavor="threaded", supervise=True) as pool:
            port = pool.ports[0]

            async def run():
                async def killer():
                    await asyncio.sleep(1.0)
                    assert pool.supervisor.kill(0)

                await asyncio.gather(
                    _drive_connection(
                        "127.0.0.1",
                        port,
                        payloads,
                        request_stream(spec, 0),
                        stop_at=time.monotonic() + 6.0,
                        max_requests=10**9,
                        stats=stats,
                    ),
                    killer(),
                )

            asyncio.run(run())
            status = pool.supervisor.status()
        assert stats.reconnects >= 1  # the kill dropped a request mid-flight
        assert stats.statuses.get(200, 0) > 0
        assert status["restarts"] >= 1 and status["replica_deaths"] >= 1
        assert pool.ports == [port]  # the replacement re-bound the same port

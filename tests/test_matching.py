"""Unit tests for matchings: Hopcroft-Karp, interval greedy, feasibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beliefs import point_belief, uniform_width_belief
from repro.errors import InfeasibleMatchingError
from repro.graph import (
    ExplicitMappingSpace,
    group_feasible_matching,
    has_perfect_matching,
    hopcroft_karp,
    maximum_matching,
    space_from_frequencies,
)


class TestHopcroftKarp:
    def test_perfect_matching(self):
        match_left, match_right, size = hopcroft_karp([[0, 1], [0], [1, 2]], 3)
        assert size == 3
        assert sorted(match_left) == [0, 1, 2]
        assert all(match_right[match_left[u]] == u for u in range(3))

    def test_maximum_but_not_perfect(self):
        # Both left nodes only reach right node 0.
        _, _, size = hopcroft_karp([[0], [0]], 2)
        assert size == 1

    def test_empty_adjacency(self):
        match_left, _, size = hopcroft_karp([[], [0]], 1)
        assert size == 1
        assert match_left[0] == -1

    def test_random_graphs_against_bruteforce(self, rng):
        # Any permutation's correct hits form a matching, and any matching
        # extends to a permutation, so the maximum matching size equals
        # the best hit count over all permutations.
        from itertools import permutations

        for _ in range(20):
            n = 5
            adjacency = [
                [j for j in range(n) if rng.random() < 0.4] for _ in range(n)
            ]
            _, _, size = hopcroft_karp(adjacency, n)
            best = max(
                sum(1 for u in range(n) if perm[u] in adjacency[u])
                for perm in permutations(range(n))
            )
            assert size == best


class TestGroupFeasibleMatching:
    def test_bigmart_seeds_with_truth(self, bigmart_space_h):
        match = group_feasible_matching(bigmart_space_h)
        assert bigmart_space_h.count_cracks(match) == bigmart_space_h.n

    def test_matching_is_consistent_and_perfect(self, bigmart_space_h):
        match = group_feasible_matching(bigmart_space_h, prefer_truth=False)
        assert sorted(match) == list(range(bigmart_space_h.n))
        for i, j in enumerate(match):
            assert bigmart_space_h.is_edge(i, int(j))

    def test_infeasible_raises(self, bigmart_frequencies):
        belief = uniform_width_belief(bigmart_frequencies, 0.01).replace(
            {5: (0.9, 1.0)}  # item 5's interval admits nothing observed
        )
        space = space_from_frequencies(belief, bigmart_frequencies)
        with pytest.raises(InfeasibleMatchingError):
            group_feasible_matching(space)
        assert not has_perfect_matching(space)

    def test_capacity_infeasibility_detected(self):
        # Two items both *only* admit the single anonymized item at 0.5.
        freqs = {1: 0.5, 2: 0.3}
        belief = point_belief({1: 0.5, 2: 0.5})
        space = space_from_frequencies(belief, freqs)
        assert not has_perfect_matching(space)
        with pytest.raises(InfeasibleMatchingError):
            group_feasible_matching(space)

    def test_explicit_space_path(self, two_blocks_space):
        match = group_feasible_matching(two_blocks_space)
        assert sorted(match) == [0, 1, 2, 3]
        for i, j in enumerate(match):
            assert two_blocks_space.is_edge(i, int(j))

    def test_explicit_infeasible(self):
        space = ExplicitMappingSpace(
            items=(1, 2),
            anonymized=("a", "b"),
            adjacency=[[0], [0]],
            true_partner_of=[0, 1],
        )
        with pytest.raises(InfeasibleMatchingError):
            group_feasible_matching(space)
        assert not has_perfect_matching(space)


class TestMaximumMatching:
    def test_perfect_when_possible(self, bigmart_space_h):
        match = maximum_matching(bigmart_space_h)
        assert (match >= 0).all()

    def test_partial_when_infeasible(self):
        space = ExplicitMappingSpace(
            items=(1, 2, 3),
            anonymized=("a", "b", "c"),
            adjacency=[[0], [0], [0, 1, 2]],
            true_partner_of=[0, 1, 2],
        )
        match = maximum_matching(space)
        assert int((match >= 0).sum()) == 2


class TestMatchingProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 12), width=st.floats(0.0, 0.3))
    def test_uniform_width_always_feasible(self, seed, n, width):
        # Compliant interval beliefs always admit the identity matching.
        rng = np.random.default_rng(seed)
        freqs = {i: float(f) for i, f in enumerate(rng.random(n), start=1)}
        belief = uniform_width_belief(freqs, width)
        space = space_from_frequencies(belief, freqs)
        assert has_perfect_matching(space)
        match = group_feasible_matching(space)
        assert sorted(match) == list(range(n))
        for i, j in enumerate(match):
            assert space.is_edge(i, int(j))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 10))
    def test_greedy_agrees_with_hopcroft_karp_on_feasibility(self, seed, n):
        rng = np.random.default_rng(seed)
        freqs = {i: float(rng.integers(1, 5)) / 5 for i in range(1, n + 1)}
        deltas = rng.random(n) * 0.3
        belief = {
            item: (max(0.0, f - d), min(1.0, f + d))
            for (item, f), d in zip(freqs.items(), deltas)
        }
        from repro.beliefs import interval_belief

        space = space_from_frequencies(interval_belief(belief), freqs)
        adjacency = [list(space.candidates(i)) for i in range(space.n)]
        _, _, size = hopcroft_karp(adjacency, space.n)
        assert has_perfect_matching(space) == (size == space.n)

"""Unit tests for crack marginals and the attack workbench."""

import numpy as np
import pytest

from repro.anonymize import anonymize
from repro.attack import best_guess_mapping, candidate_ranking, evaluate_attack
from repro.beliefs import ignorant_belief, point_belief, uniform_width_belief
from repro.core import ChainSpec, chain_expected_cracks, space_from_chain
from repro.datasets import random_database
from repro.errors import GraphError, NotAChainError
from repro.graph import (
    crack_marginals,
    expected_cracks_direct,
    space_from_frequencies,
)


class TestCrackMarginals:
    def test_chain_closed_form_sums_to_lemma6(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        space = space_from_chain(spec)
        marginals = crack_marginals(space, method="chain")
        assert marginals.sum() == pytest.approx(chain_expected_cracks(spec))

    def test_chain_agrees_with_exact(self):
        spec = ChainSpec((3, 2), (2, 1), (2,))
        space = space_from_chain(spec)
        assert crack_marginals(space, method="chain") == pytest.approx(
            crack_marginals(space, method="exact")
        )

    def test_exact_on_bigmart(self, bigmart_space_h):
        marginals = crack_marginals(bigmart_space_h, method="exact")
        assert marginals.sum() == pytest.approx(
            expected_cracks_direct(bigmart_space_h)
        )

    def test_auto_dispatch(self, bigmart_space_h):
        # BigMart-h is not a chain and is small: auto should match exact.
        assert crack_marginals(bigmart_space_h) == pytest.approx(
            crack_marginals(bigmart_space_h, method="exact")
        )

    def test_mcmc_tracks_exact(self, bigmart_space_h):
        exact = crack_marginals(bigmart_space_h, method="exact")
        estimated = crack_marginals(
            bigmart_space_h,
            method="mcmc",
            n_samples=3000,
            rng=np.random.default_rng(0),
        )
        assert estimated == pytest.approx(exact, abs=0.05)

    def test_mcmc_on_explicit_space(self, two_blocks_space):
        exact = crack_marginals(two_blocks_space, method="exact")
        estimated = crack_marginals(
            two_blocks_space, method="mcmc", n_samples=2000, rng=np.random.default_rng(1)
        )
        assert estimated == pytest.approx(exact, abs=0.08)

    def test_chain_method_rejects_non_chain(self, bigmart_space_h):
        with pytest.raises(NotAChainError):
            crack_marginals(bigmart_space_h, method="chain")

    def test_unknown_method(self, bigmart_space_h):
        with pytest.raises(GraphError):
            crack_marginals(bigmart_space_h, method="magic")

    def test_noncompliant_items_have_zero_marginal(
        self, belief_h, bigmart_frequencies
    ):
        # Item 5 guesses wrong; item 1's ignorant interval keeps the
        # 0.3-frequency anonymized item coverable, so matchings exist.
        belief = belief_h.replace({5: (0.45, 0.55)})
        space = space_from_frequencies(belief, bigmart_frequencies)
        marginals = crack_marginals(space, method="exact")
        item5 = space.item_index(5)
        assert marginals[item5] == 0.0


class TestBestGuess:
    def test_staircase_guessed_perfectly(self, staircase_space):
        guess = best_guess_mapping(staircase_space, rng=np.random.default_rng(0))
        assert guess.n_forced == 4
        assert guess.assignment == (0, 1, 2, 3)
        assert guess.expected_cracks == pytest.approx(4.0)

    def test_guess_is_a_consistent_permutation(self, bigmart_space_h, rng):
        guess = best_guess_mapping(bigmart_space_h, rng=rng)
        assert sorted(guess.assignment) == list(range(6))
        for i, j in enumerate(guess.assignment):
            assert bigmart_space_h.is_edge(i, j)

    def test_mapping_labels(self, bigmart_space_h, rng):
        guess = best_guess_mapping(bigmart_space_h, rng=rng)
        assert set(guess.mapping.keys()) == set(bigmart_space_h.anonymized)
        assert set(guess.mapping.values()) == set(bigmart_space_h.items)

    def test_point_valued_guess_hits_singletons(self, bigmart_frequencies, rng):
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        guess = best_guess_mapping(space, rng=rng)
        # Items 2 and 5 are in singleton groups: always guessed right.
        for item in (2, 5):
            i = space.item_index(item)
            assert guess.assignment[i] == space.true_partner(i)


class TestCandidateRanking:
    def test_probabilities_bounded(self, bigmart_space_h, rng):
        anon = bigmart_space_h.anonymized[0]
        ranking = candidate_ranking(bigmart_space_h, anon, rng=rng)
        assert all(0.0 <= p <= 1.0 for _, p in ranking)
        probabilities = [p for _, p in ranking]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_only_consistent_candidates_listed(self, bigmart_space_h, rng):
        # The anonymized item at frequency 0.3 can only be items with
        # 0.3 in their interval: 1 (ignorant) and 5.
        anon_index = next(
            j for j, f in enumerate(bigmart_space_h.observed) if f == 0.3
        )
        anon = bigmart_space_h.anonymized[anon_index]
        ranking = candidate_ranking(bigmart_space_h, anon, rng=rng)
        assert {item for item, _ in ranking} == {1, 5}

    def test_unknown_anonymized_label(self, bigmart_space_h, rng):
        with pytest.raises(GraphError):
            candidate_ranking(bigmart_space_h, "nope", rng=rng)


class TestEvaluateAttack:
    def test_end_to_end_on_release(self, rng):
        db = random_database(15, 250, density=0.3, rng=rng)
        released = anonymize(db, rng=rng)
        belief = uniform_width_belief(db.frequencies(), 0.01)
        outcome = evaluate_attack(released, belief, rng=rng)
        assert 0 <= outcome.n_cracked <= 15
        assert outcome.n_forced_correct <= outcome.guess.n_forced
        assert "attack cracked" in outcome.summary()

    def test_space_input(self, bigmart_space_h, rng):
        outcome = evaluate_attack(bigmart_space_h, rng=rng)
        assert outcome.n_items == 6

    def test_belief_required_with_database(self, rng):
        db = random_database(8, 100, density=0.4, rng=rng)
        released = anonymize(db, rng=rng)
        with pytest.raises(ValueError):
            evaluate_attack(released)

    def test_smart_guess_beats_random_on_structured_space(self, rng):
        # On the staircase everything is forced: accuracy 100% while the
        # raw O-estimate (no propagation) predicts about half.
        from repro.graph import ExplicitMappingSpace

        space = ExplicitMappingSpace(
            items=("a", "b", "c", "d"),
            anonymized=("a'", "b'", "c'", "d'"),
            adjacency=[[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]],
            true_partner_of=[0, 1, 2, 3],
        )
        outcome = evaluate_attack(space, rng=rng)
        assert outcome.n_cracked == 4
        assert outcome.accuracy == 1.0

    def test_infeasible_belief_falls_back_to_partial_guess(self, rng):
        # A wrong belief whose intervals admit no observed frequency for
        # some item: no perfect matching exists; the attack still returns
        # a full (partially consistent) mapping.
        from repro.beliefs import interval_belief
        from repro.graph import space_from_frequencies

        freqs = {1: 0.2, 2: 0.5, 3: 0.8}
        belief = interval_belief({1: (0.9, 1.0), 2: (0.4, 0.6), 3: (0.7, 0.9)})
        space = space_from_frequencies(belief, freqs)
        outcome = evaluate_attack(space, rng=rng)
        assert sorted(outcome.guess.assignment) == [0, 1, 2]
        assert outcome.n_cracked >= 2  # items 2 and 3 are pinned

    def test_ignorant_attack_is_weak(self, rng):
        db = random_database(20, 200, density=0.3, rng=rng)
        released = anonymize(db, rng=rng)
        outcome = evaluate_attack(released, ignorant_belief(db.domain), rng=rng)
        # Lemma 1: one expected crack; allow generous slack for one draw.
        assert outcome.n_cracked <= 6

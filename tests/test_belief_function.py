"""Unit tests for BeliefFunction."""

import pytest

from repro.beliefs import BeliefFunction, Interval, interval_belief
from repro.errors import BeliefError, DomainMismatchError


class TestConstruction:
    def test_coercion_of_inputs(self):
        beta = BeliefFunction({1: Interval(0.1, 0.2), 2: 0.5, 3: (0.3, 0.4)})
        assert beta[1] == Interval(0.1, 0.2)
        assert beta[2] == Interval.point(0.5)
        assert beta[3] == Interval(0.3, 0.4)

    def test_empty_domain_rejected(self):
        with pytest.raises(BeliefError):
            BeliefFunction({})

    def test_bad_value_rejected(self):
        with pytest.raises(BeliefError):
            BeliefFunction({1: "wide"})

    def test_missing_item_raises(self):
        beta = BeliefFunction({1: 0.5})
        with pytest.raises(BeliefError):
            beta[2]

    def test_mapping_behaviour(self):
        beta = BeliefFunction({1: 0.5, 2: 0.4})
        assert len(beta) == 2
        assert 1 in beta
        assert set(beta) == {1, 2}
        assert dict(beta.items())[2] == Interval.point(0.4)


class TestTaxonomy:
    def test_point_valued(self, belief_f, belief_h):
        assert belief_f.is_point_valued
        assert not belief_f.is_interval_valued
        assert belief_h.is_interval_valued
        assert not belief_h.is_point_valued

    def test_ignorant(self):
        beta = BeliefFunction({1: (0, 1), 2: (0, 1)})
        assert beta.is_ignorant
        assert not BeliefFunction({1: (0, 1), 2: (0, 0.9)}).is_ignorant


class TestCompliancy:
    def test_fully_compliant(self, belief_h, bigmart_frequencies):
        assert belief_h.is_compliant_for(bigmart_frequencies)
        assert belief_h.compliancy(bigmart_frequencies) == 1.0

    def test_figure2_k_is_half_compliant(self, bigmart_frequencies):
        # Belief k of Figure 2 guesses wrong on items 1-3 (wrong ranges).
        k = interval_belief(
            {1: (0.6, 1.0), 2: (0.1, 0.3), 3: (0.0, 0.4), 4: (0.4, 0.6), 5: (0.1, 0.4), 6: 0.5}
        )
        assert k.compliancy(bigmart_frequencies) == pytest.approx(0.5)
        assert k.compliant_items(bigmart_frequencies) == frozenset({4, 5, 6})

    def test_missing_frequencies_raise(self, belief_h):
        with pytest.raises(DomainMismatchError):
            belief_h.compliancy({1: 0.5})


class TestDerivation:
    def test_restrict(self, belief_h):
        restricted = belief_h.restrict([1, 2])
        assert restricted.domain == frozenset({1, 2})
        assert restricted[2] == belief_h[2]

    def test_restrict_outside_domain_rejected(self, belief_h):
        with pytest.raises(DomainMismatchError):
            belief_h.restrict([99])

    def test_widen(self, belief_h):
        widened = belief_h.widen(0.05)
        assert widened[2].low == pytest.approx(0.35)
        assert widened[2].high == pytest.approx(0.55)
        assert widened[1] == Interval(0.0, 1.0)  # clamped

    def test_replace(self, belief_h):
        replaced = belief_h.replace({2: (0.0, 0.1)})
        assert replaced[2] == Interval(0.0, 0.1)
        assert replaced[3] == belief_h[3]

    def test_replace_outside_domain_rejected(self, belief_h):
        with pytest.raises(DomainMismatchError):
            belief_h.replace({99: 0.5})

    def test_equality_and_hash(self, bigmart_frequencies):
        from repro.beliefs import point_belief

        assert point_belief(bigmart_frequencies) == point_belief(bigmart_frequencies)
        assert hash(point_belief(bigmart_frequencies)) == hash(point_belief(bigmart_frequencies))

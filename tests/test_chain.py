"""Unit tests for chain belief functions (Lemmas 5-6, Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChainSpec,
    chain_delta,
    chain_expected_cracks,
    chain_from_space,
    chain_o_estimate,
    chain_percentage_error,
    space_from_chain,
)
from repro.errors import NotAChainError
from repro.graph import expected_cracks_direct


class TestChainSpec:
    def test_figure_4a(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        assert spec.k == 2
        assert spec.n == 8
        assert spec.correct_to_lower() == (2,)
        assert spec.correct_to_upper() == (1,)

    def test_size_mismatch_rejected(self):
        with pytest.raises(NotAChainError):
            ChainSpec((5, 3), (3, 2), (4,))  # sums differ

    def test_length_mismatch_rejected(self):
        with pytest.raises(NotAChainError):
            ChainSpec((5, 3), (3,), (3,))

    def test_negative_split_rejected(self):
        # e_1 > n_1 forces a negative c_1.
        with pytest.raises(NotAChainError):
            ChainSpec((2, 6), (4, 0), (4,))

    def test_trivial_chain_of_length_one(self):
        spec = ChainSpec((4,), (4,), ())
        assert chain_expected_cracks(spec) == pytest.approx(1.0)
        assert chain_o_estimate(spec) == pytest.approx(1.0)


class TestFormulas:
    def test_figure_4a_values(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        assert chain_expected_cracks(spec) == pytest.approx(74 / 45)
        assert chain_o_estimate(spec) == pytest.approx(197 / 120)
        assert chain_delta(spec) == pytest.approx(74 / 45 - 197 / 120)

    @pytest.mark.parametrize(
        "e,s,expected_error",
        [
            ((10, 10, 10), (20, 20), 1.54),
            ((5, 10, 10), (25, 20), 4.80),
            ((5, 10, 5), (25, 25), 8.33),
            ((5, 6, 5), (27, 27), 5.76),
            ((10, 20, 10), (15, 15), 7.27),
        ],
    )
    def test_section_5_2_error_table(self, e, s, expected_error):
        # The paper's table (n = 20, 30, 20).  Note: rows 2-4 are printed
        # with e_1 = 15 in the paper, which contradicts the partition
        # constraint; e_1 = 5 restores it and reproduces the printed
        # error percentages exactly.
        spec = ChainSpec((20, 30, 20), e, s)
        assert chain_percentage_error(spec) == pytest.approx(expected_error, abs=0.05)

    def test_point_valued_chain_reduces_to_lemma3(self):
        # All-exclusive chain: OE = exact = number of groups.
        spec = ChainSpec((4, 2, 5), (4, 2, 5), (0, 0))
        assert chain_expected_cracks(spec) == pytest.approx(3.0)
        assert chain_o_estimate(spec) == pytest.approx(3.0)


class TestSpaceFromChain:
    def test_realizes_group_sizes(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        space = space_from_chain(spec)
        assert space.n == 8
        assert tuple(space.groups.counts) == (5, 3)
        assert space.compliant_mask().all()

    def test_exact_formula_matches_direct_method(self):
        for spec in [
            ChainSpec((5, 3), (3, 2), (3,)),
            ChainSpec((2, 1), (1, 0), (2,)),
            ChainSpec((3, 3, 2), (1, 1, 1), (3, 2)),
        ]:
            space = space_from_chain(spec)
            assert expected_cracks_direct(space) == pytest.approx(
                chain_expected_cracks(spec)
            ), spec

    def test_custom_frequencies(self):
        spec = ChainSpec((2, 2), (1, 1), (2,))
        space = space_from_chain(spec, frequencies=(0.3, 0.7))
        assert space.groups.freqs == (0.3, 0.7)

    def test_bad_frequencies_rejected(self):
        spec = ChainSpec((2, 2), (1, 1), (2,))
        with pytest.raises(NotAChainError):
            space_from_chain(spec, frequencies=(0.7, 0.3))
        with pytest.raises(NotAChainError):
            space_from_chain(spec, frequencies=(0.3,))


class TestChainFromSpace:
    def test_roundtrip(self):
        spec = ChainSpec((4, 6, 3), (2, 3, 1), (3, 4))
        assert chain_from_space(space_from_chain(spec)) == spec

    def test_non_chain_rejected(self, bigmart_space_h):
        with pytest.raises(NotAChainError):
            chain_from_space(bigmart_space_h)

    def test_o_estimate_consistency(self):
        from repro.core import o_estimate

        spec = ChainSpec((4, 6, 3), (2, 3, 1), (3, 4))
        space = space_from_chain(spec)
        assert o_estimate(space).value == pytest.approx(chain_o_estimate(spec))


class TestChainProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n1=st.integers(1, 6),
        n2=st.integers(1, 6),
        e1=st.integers(0, 6),
        e2=st.integers(0, 6),
    )
    def test_length2_formula_matches_enumeration(self, n1, n2, e1, e2):
        s1 = n1 + n2 - e1 - e2
        if s1 < 0 or e1 > n1 or e2 > n2 or n1 + n2 > 9:
            return
        try:
            spec = ChainSpec((n1, n2), (e1, e2), (s1,))
        except NotAChainError:
            return
        space = space_from_chain(spec)
        assert expected_cracks_direct(space) == pytest.approx(
            chain_expected_cracks(spec)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 4), min_size=2, max_size=3),
        seed=st.integers(0, 2**31),
    )
    def test_oe_is_a_lower_bound_for_chains(self, sizes, seed):
        # Delta >= 0 by Cauchy-Schwarz: c^2/(s*n_i) + d^2/(s*n_{i+1})
        # >= (c+d)^2 / (s*(n_i+n_{i+1})) = s/(n_i+n_{i+1}), so the chain
        # O-estimate never exceeds the exact expected cracks.
        rng = np.random.default_rng(seed)
        k = len(sizes)
        e, s = [], []
        d_prev = 0
        feasible = True
        for g in range(k):
            c_max = sizes[g] - d_prev
            if c_max < 0:
                feasible = False
                break
            if g == k - 1:
                e.append(c_max)
            else:
                e_g = int(rng.integers(0, c_max + 1))
                e.append(e_g)
                c_g = c_max - e_g
                d_g = int(rng.integers(0, 3))
                s.append(c_g + d_g)
                d_prev = d_g
        if not feasible:
            return
        try:
            spec = ChainSpec(tuple(sizes), tuple(e), tuple(s))
        except NotAChainError:
            return
        exact = chain_expected_cracks(spec)
        estimate = chain_o_estimate(spec)
        assert estimate <= exact + 1e-9

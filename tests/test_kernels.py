"""Vectorized exact kernels, DP memoization and the permanent-path fixes.

Pins the contract of this change set:

* the chunked numpy Ryser and the batched block kernel are bit-identical
  to the pure-Python exact-int reference on every matrix class they
  accept (random integral, zero blocks, negative, astronomically large);
* budgets cancel the chunked walk cooperatively mid-chunk;
* the interval-DP memo layer never changes a result, and
  ``sweep_tolerance`` is byte-identical with and without it;
* the three permanent-path bugfixes (dead ``_ryser`` dispatcher,
  cap-gated block splitting, deadline-oblivious retry backoff) stay
  fixed.
"""

import importlib
import time

import numpy as np
import pytest

# `repro.graph` re-exports a `permanent` *function*, which shadows the
# submodule under plain `import repro.graph.permanent as ...`.
permanent_module = importlib.import_module("repro.graph.permanent")
from repro.budget import ComputeBudget
from repro.data.database import FrequencyProfile
from repro.errors import BudgetExceeded, GraphError
from repro.graph.intervaldp import (
    DPBudget,
    assignment_count,
    class_pin_counts,
    class_placement_totals,
    clear_dp_memo,
    dp_memo_stats,
)
from repro.graph.kernels import (
    permanent_batch,
    ryser_int,
    ryser_int_chunked,
    ryser_int_python,
)
from repro.graph.permanent import permanent
from repro.io import assessment_to_json
from repro.service.engine import AssessmentEngine


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def random_integral_matrices(seed: int):
    """Matrices covering every dispatch path of the vectorized kernels."""
    rng = np.random.default_rng(seed)
    cases = []
    for trial in range(40):
        n = int(rng.integers(0, 13))
        style = trial % 5
        if style == 0:
            m = rng.integers(0, 2, size=(n, n))  # adjacency
        elif style == 1:
            m = rng.integers(-5, 6, size=(n, n))  # signed
        elif style == 2:
            m = rng.integers(0, 10**9, size=(n, n))  # int64 segmentation
        elif style == 3:
            m = rng.integers(0, 2, size=(n, n)).astype(float)  # whole floats
        else:
            m = rng.integers(0, 2, size=(n, n))
            if n >= 4:  # plant a zero block
                m[: n // 2, n // 2 :] = 0
                m[n // 2 :, : n // 2] = 0
        cases.append(np.asarray(m))
    return cases


class TestChunkedRyser:
    def test_bit_identical_to_pure_python(self):
        for matrix in random_integral_matrices(seed=11):
            assert ryser_int_chunked(matrix) == ryser_int_python(matrix)

    def test_dispatcher_matches_reference(self):
        for matrix in random_integral_matrices(seed=17):
            assert ryser_int(matrix) == ryser_int_python(matrix)

    def test_object_dtype_fallback_is_exact(self):
        rng = np.random.default_rng(3)
        huge = rng.integers(1, 9, size=(10, 10)).astype(object) * 10**40
        assert ryser_int_chunked(huge) == ryser_int_python(huge)

    def test_int64_segmentation_path_is_exact(self):
        rng = np.random.default_rng(5)
        wide = rng.integers(10**8, 10**9, size=(12, 12))
        assert ryser_int_chunked(wide) == ryser_int_python(wide)

    def test_chunk_size_does_not_change_results(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 2, size=(11, 11))
        reference = ryser_int_python(matrix)
        for chunk in (1, 3, 64, 1 << 11, 1 << 13):
            assert ryser_int_chunked(matrix, chunk=chunk) == reference

    def test_budget_cancels_mid_chunk(self):
        clock = FakeClock()
        budget = ComputeBudget(seconds=0.5, clock=clock, poll_every=1)
        clock.advance(1.0)
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 2, size=(14, 14))
        with pytest.raises(BudgetExceeded):
            ryser_int_chunked(matrix, budget=budget)

    def test_empty_matrix(self):
        assert ryser_int_chunked(np.zeros((0, 0), dtype=np.int64)) == 1


class TestPermanentBatch:
    def test_matches_per_matrix_reference(self):
        rng = np.random.default_rng(13)
        for n in (0, 1, 5, 9, 10):
            mats = [rng.integers(0, 2, size=(n, n)) for _ in range(7)]
            assert permanent_batch(mats) == [ryser_int_python(m) for m in mats]

    def test_mixed_magnitudes_share_a_safe_segmentation(self):
        rng = np.random.default_rng(15)
        small = rng.integers(0, 2, size=(10, 10))
        large = rng.integers(10**7, 10**8, size=(10, 10))
        assert permanent_batch([small, large]) == [
            ryser_int_python(small),
            ryser_int_python(large),
        ]

    def test_object_straggler_evaluated_individually(self):
        rng = np.random.default_rng(17)
        mats = [rng.integers(0, 2, size=(9, 9)) for _ in range(3)]
        mats.append(rng.integers(1, 5, size=(9, 9)).astype(object) * 10**40)
        assert permanent_batch(mats) == [ryser_int_python(m) for m in mats]

    def test_unequal_shapes_rejected(self):
        with pytest.raises(GraphError, match="equal shapes"):
            permanent_batch([np.ones((3, 3), dtype=np.int64), np.ones((4, 4), dtype=np.int64)])

    def test_non_square_rejected(self):
        with pytest.raises(GraphError, match="square"):
            permanent_batch([np.ones((3, 4), dtype=np.int64)])

    def test_empty_batch(self):
        assert permanent_batch([]) == []

    def test_budget_cancels_batched_walk(self):
        clock = FakeClock()
        budget = ComputeBudget(seconds=0.5, clock=clock, poll_every=1)
        clock.advance(1.0)
        rng = np.random.default_rng(19)
        mats = [rng.integers(0, 2, size=(12, 12)) for _ in range(4)]
        with pytest.raises(BudgetExceeded):
            permanent_batch(mats, budget=budget)


class TestPermanentPathFixes:
    def test_dead_ryser_dispatcher_removed(self):
        # Satellite: the unbudgeted `_ryser` dispatcher is gone; the
        # pure reference under its historical name still takes a budget.
        assert not hasattr(permanent_module, "_ryser")
        clock = FakeClock()
        budget = ComputeBudget(seconds=0.5, clock=clock, poll_every=1)
        clock.advance(1.0)
        rng = np.random.default_rng(21)
        with pytest.raises(BudgetExceeded):
            permanent_module._ryser_int(
                rng.integers(0, 2, size=(14, 14)), budget=budget
            )

    def test_permanent_threads_budget_through_kernels(self):
        clock = FakeClock()
        budget = ComputeBudget(seconds=0.5, clock=clock, poll_every=1)
        clock.advance(1.0)
        rng = np.random.default_rng(23)
        with pytest.raises(BudgetExceeded):
            permanent(rng.integers(0, 2, size=(14, 14)), budget=budget)

    def test_block_diagonal_splits_below_the_cap(self):
        # Satellite: a 22x22 block-diagonal matrix used to pay the full
        # 2^22 walk (and a 24x24 one used to raise); both now split.
        rng = np.random.default_rng(25)
        blocks = []
        for _ in range(2):
            b = np.minimum(
                rng.integers(0, 2, size=(12, 12)) + np.eye(12, dtype=np.int64), 1
            )
            blocks.append(b)
        big = np.zeros((24, 24), dtype=np.int64)
        big[:12, :12] = blocks[0]
        big[12:, 12:] = blocks[1]
        expected = ryser_int_python(blocks[0]) * ryser_int_python(blocks[1])
        assert permanent(big) == expected

    def test_block_diagonal_at_the_cap_is_fast(self):
        # 22x22 of two 11-blocks: must cost two 2^11 walks, not one 2^22.
        rng = np.random.default_rng(27)
        big = np.zeros((22, 22), dtype=np.int64)
        for s in (0, 11):
            big[s : s + 11, s : s + 11] = np.minimum(
                rng.integers(0, 2, size=(11, 11)) + np.eye(11, dtype=np.int64), 1
            )
        start = time.perf_counter()
        value = permanent(big)
        elapsed = time.perf_counter() - start
        assert value == ryser_int_python(big[:11, :11]) * ryser_int_python(
            big[11:, 11:]
        )
        assert elapsed < 1.0  # a full 2^22 walk takes tens of seconds

    def test_single_oversized_block_still_infeasible(self):
        with pytest.raises(GraphError, match="infeasible"):
            permanent(np.ones((23, 23)))

    def test_unequal_block_rows_still_zero(self):
        matrix = np.ones((8, 8), dtype=np.int64)
        matrix[3, :] = 0  # a zero row: no permutation survives
        assert permanent(matrix) == 0


class TestDPMemo:
    def setup_method(self):
        clear_dp_memo()

    def teardown_method(self):
        clear_dp_memo()

    def test_memo_hit_returns_identical_results(self):
        capacities = (2, 3, 2, 4, 1)
        classes = {(0, 2): 2, (1, 4): 5, (2, 5): 4, (4, 5): 1}
        cold = assignment_count(capacities, classes)
        warm = assignment_count(capacities, classes)
        assert cold == warm
        stats = dp_memo_stats()
        assert stats["count_hits"] >= 1

    def test_placement_totals_memo_copies_are_independent(self):
        capacities = (2, 2, 2)
        classes = {(0, 2): 3, (1, 3): 3}
        total, placements = class_placement_totals(capacities, classes)
        placements[((0, 2), 0)] = -1  # corrupt the caller's copy
        total2, placements2 = class_placement_totals(capacities, classes)
        assert total2 == total
        assert placements2[((0, 2), 0)] != -1

    def test_layer_prefix_reused_across_pins(self):
        # class_pin_counts perturbs capacities/classes late in the
        # segment; the early DP layers must come from the prefix cache.
        capacities = tuple([3] * 10)
        classes = {(g, min(g + 2, 10)): 3 for g in range(0, 10, 1)}
        classes = {k: v for k, v in classes.items() if k[0] < k[1]}
        assignment_count(capacities, classes)
        before = dp_memo_stats()["layer_hits"]
        pins = [((8, 10), 8), ((8, 10), 9)]
        pinned = class_pin_counts(capacities, classes, pins)
        after = dp_memo_stats()["layer_hits"]
        assert after > before
        clear_dp_memo()
        assert class_pin_counts(capacities, classes, pins) == pinned

    def test_memo_keyed_on_budget_bounds(self):
        # A generous run must not let a tiny op budget succeed later.
        capacities = (3, 3, 3, 3)
        classes = {(0, 4): 6, (1, 3): 4, (0, 2): 2}
        assignment_count(capacities, classes)  # cached under default bounds
        with pytest.raises(GraphError, match="op budget"):
            assignment_count(capacities, classes, budget=DPBudget(max_ops=2))

    def test_results_unchanged_by_memo(self):
        rng = np.random.default_rng(31)
        for _ in range(10):
            k = int(rng.integers(1, 6))
            capacities = tuple(int(c) for c in rng.integers(1, 4, size=k))
            classes = {}
            remaining = sum(capacities)
            while remaining > 0:
                lo = int(rng.integers(0, k))
                hi = int(rng.integers(lo + 1, k + 1))
                take = int(rng.integers(1, remaining + 1))
                classes[(lo, hi)] = classes.get((lo, hi), 0) + take
                remaining -= take
            clear_dp_memo()
            cold = assignment_count(capacities, classes)
            warm = assignment_count(capacities, classes)
            clear_dp_memo()
            again = assignment_count(capacities, classes)
            assert cold == warm == again


def _sweep_profile(n: int = 60, n_groups: int = 12) -> FrequencyProfile:
    counts = {f"item{i}": 10 + (i % n_groups) * 20 for i in range(n)}
    return FrequencyProfile(counts, 1000)


class TestSweepReuse:
    def test_sweep_byte_identical_with_and_without_memo(self):
        profile = _sweep_profile()
        tolerances = [round(0.02 + 0.01 * t, 6) for t in range(8)]

        clear_dp_memo()
        plain = AssessmentEngine(reuse_exact_intermediates=False)
        baseline = []
        for tolerance in tolerances:
            clear_dp_memo()  # emulate the pre-memo engine exactly
            baseline.append(
                plain.assess(profile, tolerance, runs=3, seed=0).assessment
            )

        clear_dp_memo()
        memo = AssessmentEngine(reuse_exact_intermediates=True)
        swept = memo.sweep_tolerance(profile, tolerances, runs=3, seed=0)

        assert [assessment_to_json(a) for a in baseline] == [
            assessment_to_json(o.assessment) for o in swept
        ]
        assert memo.metrics.snapshot()["counters"].get("exact_memo_hits", 0) > 0

    def test_exact_memo_distinguishes_interest_sets(self):
        profile = _sweep_profile()
        engine = AssessmentEngine()
        full = engine.assess(profile, 0.05, runs=3, seed=0).assessment
        subset = engine.assess(
            profile, 0.05, runs=3, seed=0, interest=["item0", "item1"]
        ).assessment
        assert full.exact_cracks != subset.exact_cracks


class TestDeadlineAwareRetries:
    def _flaky_engine(self, failures: int) -> AssessmentEngine:
        engine = AssessmentEngine()
        original = engine._compute
        state = {"left": failures}

        def compute(profile, params, fingerprint, budget=None):
            if state["left"] > 0:
                state["left"] -= 1
                raise OSError("transient fault")
            return original(profile, params, fingerprint, budget=budget)

        engine._compute = compute  # type: ignore[method-assign]
        return engine

    def test_backoff_capped_by_remaining_deadline(self):
        # One transient failure with a 10 s backoff under a 0.2 s
        # deadline: the old code slept the full 10 s regardless.
        engine = self._flaky_engine(failures=1)
        profile = _sweep_profile(n=20, n_groups=4)
        start = time.perf_counter()
        results = engine.assess_many(
            [(profile, self._params())],
            retries=2,
            backoff_seconds=10.0,
            deadline_seconds=0.2,
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0, f"backoff ignored the deadline ({elapsed:.1f}s)"
        # The sleep consumed the remaining budget, so the retry fails
        # fast instead of succeeding after a 10 s nap.
        assert results[0].attempts == 2
        assert results[0].error is not None
        assert "deadline" in results[0].error

    def test_retry_succeeds_when_deadline_allows(self):
        engine = self._flaky_engine(failures=1)
        profile = _sweep_profile(n=20, n_groups=4)
        results = engine.assess_many(
            [(profile, self._params())],
            retries=2,
            backoff_seconds=0.01,
            deadline_seconds=30.0,
        )
        assert results[0].ok
        assert results[0].attempts == 2

    def test_exhausted_deadline_fails_fast_without_sleeping(self):
        engine = self._flaky_engine(failures=5)
        profile = _sweep_profile(n=20, n_groups=4)

        # Burn the whole deadline inside the first attempt.
        original = engine._compute

        def compute(profile, params, fingerprint, budget=None):
            if budget is not None:
                budget._deadline = budget._clock() - 1.0
            return original(profile, params, fingerprint, budget=budget)

        engine._compute = compute  # type: ignore[method-assign]
        start = time.perf_counter()
        results = engine.assess_many(
            [(profile, self._params())],
            retries=3,
            backoff_seconds=10.0,
            deadline_seconds=0.2,
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        assert not results[0].ok
        assert "transient fault" in results[0].error

    def test_undeadlined_batch_unchanged(self):
        engine = self._flaky_engine(failures=1)
        profile = _sweep_profile(n=20, n_groups=4)
        results = engine.assess_many(
            [(profile, self._params())], retries=2, backoff_seconds=0.0
        )
        assert results[0].ok
        assert results[0].attempts == 2

    @staticmethod
    def _params():
        from repro.service.fingerprint import AssessmentParams

        return AssessmentParams(tolerance=0.05, delta=None, runs=3, seed=0)


class TestBatchedEngineAgreement:
    def test_explicit_space_marginals_match_reference(self):
        # The batched engine must agree with per-matrix Ryser on a
        # multi-block explicit space (the bench_graph workload shape).
        from repro.graph import ExplicitMappingSpace, crack_marginals_exact
        from repro.graph.blocks import decompose
        from repro.graph.exact import _block_adjacency

        rng = np.random.default_rng(33)
        n, block_size = 40, 8
        adjacency = []
        for start in range(0, n, block_size):
            stop = min(start + block_size, n)
            for i in range(start, stop):
                others = [
                    j for j in range(start, stop) if j != i and rng.random() < 0.5
                ]
                adjacency.append(sorted({i, *others}))
        space = ExplicitMappingSpace(
            items=tuple(range(n)),
            anonymized=tuple(f"{i}'" for i in range(n)),
            adjacency=adjacency,
            true_partner_of=list(range(n)),
        )
        marginals = crack_marginals_exact(space)
        reference = np.zeros(n)
        for block in decompose(space).blocks:
            matrix = _block_adjacency(space, block)
            total = ryser_int_python(matrix)
            anon_local = {j: r for r, j in enumerate(block.anon_indices)}
            for c, i in enumerate(block.item_indices):
                j = space.true_partner(i)
                row = anon_local.get(j)
                if row is None or matrix[row, c] == 0:
                    continue
                minor = np.delete(np.delete(matrix, row, axis=0), c, axis=1)
                reference[i] = ryser_int_python(minor) / total
        np.testing.assert_array_equal(marginals, reference)

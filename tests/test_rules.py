"""Unit tests for association-rule generation."""

import pytest

from repro.data import TransactionDatabase
from repro.errors import DataError
from repro.mining import FrequentItemset, apriori, generate_rules
from repro.mining.rules import AssociationRule


@pytest.fixture
def basket_db():
    return TransactionDatabase(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )


class TestGenerateRules:
    def test_textbook_rule(self, basket_db):
        rules = generate_rules(apriori(basket_db, 0.4), min_confidence=0.9)
        as_pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        # {beer} -> {diapers}: support 0.6, conf 0.6/0.6 = 1.0
        assert (frozenset({"beer"}), frozenset({"diapers"})) in as_pairs

    def test_measures_are_correct(self, basket_db):
        rules = generate_rules(apriori(basket_db, 0.4), min_confidence=0.9)
        rule = next(
            r for r in rules
            if r.antecedent == frozenset({"beer"}) and r.consequent == frozenset({"diapers"})
        )
        assert rule.support == pytest.approx(0.6)
        assert rule.confidence == pytest.approx(1.0)
        assert rule.lift == pytest.approx(1.0 / 0.8)
        assert rule.leverage == pytest.approx(0.6 - 0.6 * 0.8)

    def test_confidence_threshold_filters(self, basket_db):
        lax = generate_rules(apriori(basket_db, 0.4), min_confidence=0.5)
        strict = generate_rules(apriori(basket_db, 0.4), min_confidence=0.95)
        assert len(strict) < len(lax)
        assert all(rule.confidence >= 0.95 for rule in strict)

    def test_lift_threshold(self, basket_db):
        rules = generate_rules(apriori(basket_db, 0.4), min_confidence=0.5, min_lift=1.01)
        assert all(rule.lift >= 1.01 for rule in rules)

    def test_sorted_by_confidence(self, basket_db):
        rules = generate_rules(apriori(basket_db, 0.4), min_confidence=0.4)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_sides_partition_the_itemset(self, basket_db):
        for rule in generate_rules(apriori(basket_db, 0.4), min_confidence=0.4):
            assert rule.antecedent
            assert rule.consequent
            assert not (rule.antecedent & rule.consequent)

    def test_missing_subset_support_detected(self):
        # not downward closed: the pair is present but not its singletons
        broken = [FrequentItemset(support=0.5, items=frozenset({1, 2}))]
        with pytest.raises(DataError, match="downward"):
            generate_rules(broken, min_confidence=0.5)

    def test_invalid_confidence(self, basket_db):
        with pytest.raises(DataError):
            generate_rules(apriori(basket_db, 0.4), min_confidence=0.0)

    def test_str_rendering(self, basket_db):
        rules = generate_rules(apriori(basket_db, 0.4), min_confidence=0.9)
        text = str(rules[0])
        assert "->" in text
        assert "conf=" in text


class TestAssociationRule:
    def test_validation(self):
        with pytest.raises(DataError):
            AssociationRule(
                antecedent=frozenset(),
                consequent=frozenset({1}),
                support=0.5,
                confidence=0.5,
                lift=1.0,
                leverage=0.0,
            )
        with pytest.raises(DataError):
            AssociationRule(
                antecedent=frozenset({1}),
                consequent=frozenset({1, 2}),
                support=0.5,
                confidence=0.5,
                lift=1.0,
                leverage=0.0,
            )

"""Tests for the streaming attacker workbench (repro.attack.solver).

The load-bearing checks: the forced/forbidden/undecided partition is
cross-checked against brute-force matching enumeration on random small
instances, and the streamed partition is invariant under observation
reordering (observations are candidate-set intersections, hence
commutative).
"""

from __future__ import annotations

import itertools

import pytest

from repro.attack.solver import (
    ConsistencySolver,
    Observation,
    SolverEvent,
    decode_observation,
    read_observations,
    solver_from_space,
)
from repro.budget import ComputeBudget
from repro.errors import BudgetExceeded, SolverError
from repro.graph.refine import (
    classify_adjacency,
    propagate_degree_k,
    reduced_blocks,
)
from repro.service.crack import CrackSessionStore, solver_from_instance

STAIRCASE = [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]]


def brute_force_partition(adjacency):
    """Forced/forbidden edge sets by enumerating all perfect matchings."""
    n = len(adjacency)
    rows = [set(row) for row in adjacency]
    matchings = [
        perm
        for perm in itertools.permutations(range(n))
        if all(perm[i] in rows[i] for i in range(n))
    ]
    forced = set()
    forbidden = set()
    for i in range(n):
        for j in rows[i]:
            hits = sum(1 for perm in matchings if perm[i] == j)
            if hits == len(matchings) and matchings:
                forced.add((i, j))
            elif hits == 0:
                forbidden.add((i, j))
    return matchings, forced, forbidden


def solver_partition(solver):
    partition = solver.partition
    forced = set(partition.forced.items())
    forbidden = {
        (i, j) for i in range(solver.n) for j in partition.forbidden[i]
    }
    return forced, forbidden


class TestBruteForceCrossCheck:
    """The exact classification agrees with matching enumeration, n <= 8."""

    def test_randomized_instances(self, rng):
        for trial in range(60):
            n = int(rng.integers(2, 9))
            density = 0.25 + 0.65 * float(rng.random())
            adjacency = [
                sorted(j for j in range(n) if rng.random() < density)
                for i in range(n)
            ]
            matchings, forced, forbidden = brute_force_partition(adjacency)
            solver = ConsistencySolver(adjacency)
            if not matchings:
                assert solver.partition.infeasible, adjacency
                continue
            got_forced, got_forbidden = solver_partition(solver)
            assert got_forced == forced, adjacency
            assert got_forbidden == forbidden, adjacency

    def test_randomized_instances_after_observations(self, rng):
        # Ingesting restrictions must land on the brute-force partition
        # of the restricted graph.
        for trial in range(30):
            n = int(rng.integers(3, 8))
            adjacency = [
                sorted(set(rng.integers(0, n, size=n).tolist()) | {i})
                for i in range(n)
            ]
            solver = ConsistencySolver(adjacency)
            item = int(rng.integers(0, n))
            keep = sorted(
                j for j in adjacency[item] if rng.random() < 0.7
            ) or [adjacency[item][0]]
            solver.ingest(Observation(kind="restrict", item=item, anons=tuple(keep)))
            restricted = [
                keep if i == item else adjacency[i] for i in range(n)
            ]
            matchings, forced, forbidden = brute_force_partition(restricted)
            if not matchings:
                assert solver.partition.infeasible
                continue
            got_forced, got_forbidden = solver_partition(solver)
            assert got_forced == forced
            # The solver reports forbidden edges relative to its current
            # graph, which no longer contains observation-removed edges.
            current = {(i, j) for i in range(n) for j in restricted[i]}
            assert got_forbidden == forbidden & current


class TestStreamingOrderInvariance:
    def test_final_partition_is_order_free(self):
        adjacency = [[0, 1, 2, 3]] * 4
        observations = [
            Observation(kind="restrict", item=0, anons=(0, 1)),
            Observation(kind="confirm", item=1, anon=2),
            Observation(kind="transaction", items=(2, 3), anons=(0, 1, 3)),
        ]
        outcomes = set()
        for order in itertools.permutations(observations):
            solver = ConsistencySolver(adjacency)
            events = list(solver.replay(order))
            outcomes.add(
                (
                    frozenset(solver_partition(solver)[0]),
                    frozenset(solver_partition(solver)[1]),
                    solver.infeasible,
                )
            )
            assert all(isinstance(e, SolverEvent) for e in events)
        assert len(outcomes) == 1

    def test_forced_events_never_retract(self):
        solver = ConsistencySolver([[0, 1], [0, 1], [2, 3], [2, 3]])
        first = solver.ingest(Observation(kind="confirm", item=0, anon=0))
        assert {(e.kind, e.item, e.anon) for e in first} >= {("forced", 0, 0), ("forced", 1, 1)}
        again = solver.ingest(Observation(kind="restrict", item=2, anons=(2,)))
        kinds = {(e.kind, e.item, e.anon) for e in again}
        assert ("forced", 0, 0) not in kinds  # already emitted once
        assert ("forced", 2, 2) in kinds


class TestStaircaseNoExactEngine:
    def test_all_identifications_without_ryser_or_dp(self, monkeypatch):
        # import_module: the package re-exports the ``permanent``
        # function under the same attribute as the submodule.
        from importlib import import_module

        permanent_mod = import_module("repro.graph.permanent")
        intervaldp_mod = import_module("repro.graph.intervaldp")

        def boom(*args, **kwargs):
            raise AssertionError("the exact counting engines must not run")

        monkeypatch.setattr(permanent_mod, "permanent", boom)
        monkeypatch.setattr(intervaldp_mod, "assignment_count", boom)
        solver = ConsistencySolver(STAIRCASE, true_partner_of=[0, 1, 2, 3])
        events = solver.bootstrap()
        forced = [(e.item, e.anon) for e in events if e.kind == "forced"]
        assert forced == [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert all(e.crack for e in events if e.kind == "forced")
        assert solver.summary()["undecided"] == 0
        assert solver.certified_cracks() == 4

    def test_infeasible_event_emitted_once(self):
        solver = ConsistencySolver(STAIRCASE)
        solver.bootstrap()
        events = solver.ingest(Observation(kind="confirm", item=1, anon=1))
        assert events == []  # already forced, nothing new
        events = solver.ingest(Observation(kind="confirm", item=1, anon=0))
        assert [e.kind for e in events] == ["infeasible"]
        assert solver.infeasible
        events = solver.ingest(Observation(kind="restrict", item=2, anons=(2,)))
        assert events == []


class TestHallInfeasibility:
    def test_hall_violation_detected_without_empty_rows(self):
        # Three items crowd two anons: every row non-empty, no matching.
        solver = ConsistencySolver([[0, 1], [0, 1], [0, 1], [0, 1, 2, 3]])
        assert solver.partition.infeasible
        events = solver.bootstrap()
        assert [e.kind for e in events] == ["infeasible"]


class TestDegreeK:
    def test_naked_pair_prunes_outside_edges(self):
        # Items 0,1 both see only {0,1}: a naked pair reserving those
        # anons, so item 2 loses its edges into the pair.
        result = propagate_degree_k([{0, 1}, {0, 1}, {0, 1, 2}], k=2)
        assert not result.infeasible
        assert set(result.removed) == {(2, 0), (2, 1)}
        assert result.forced == {2: 2}

    def test_solver_uses_subset_front(self):
        solver = ConsistencySolver([[0, 1], [0, 1], [0, 1, 2]], degree_k=2)
        forced, forbidden = solver_partition(solver)
        assert (2, 2) in forced
        assert {(2, 0), (2, 1)} <= forbidden


class TestBudget:
    def test_solver_loops_poll_the_budget(self):
        budget = ComputeBudget()
        budget.cancel()
        solver = ConsistencySolver([[0, 1], [0, 1]], budget=budget)
        with pytest.raises(BudgetExceeded):
            solver.ingest(Observation(kind="confirm", item=0, anon=0))


class TestObservationWire:
    def test_round_trip(self):
        for payload in (
            {"kind": "confirm", "item": 3, "anon": 5},
            {"kind": "restrict", "item": 1, "anons": [0, 2]},
            {"kind": "tighten", "item": 0, "low": 0.1, "high": 0.4},
            {"kind": "transaction", "items": [1, 2], "anons": [3]},
            {"kind": "close"},
        ):
            observation = decode_observation(
                Observation.from_json(payload).encode()
            )
            assert observation.to_json() == payload

    def test_malformed_lines_rejected(self):
        for line in (
            "not json",
            "[1, 2]",
            '{"kind": "nope"}',
            '{"kind": "confirm", "item": -1, "anon": 0}',
            '{"kind": "confirm", "item": true, "anon": 0}',
            '{"kind": "restrict", "item": 0, "anons": "ab"}',
            '{"kind": "tighten", "item": 0, "low": 0.9, "high": 0.1}',
        ):
            with pytest.raises(SolverError):
                decode_observation(line)

    def test_read_observations_skips_blank_lines(self):
        lines = ['{"kind": "close"}', "", "  ", '{"kind": "confirm", "item": 0, "anon": 0}']
        kinds = [obs.kind for obs in read_observations(lines)]
        assert kinds == ["close", "confirm"]

    def test_tighten_requires_observed_frequencies(self):
        solver = ConsistencySolver([[0, 1], [0, 1]])
        with pytest.raises(SolverError, match="observed frequencies"):
            solver.ingest(Observation(kind="tighten", item=0, low=0.0, high=1.0))


class TestOwnerDualView:
    def test_tighten_against_frequency_space(self, bigmart_space_h):
        solver = solver_from_space(bigmart_space_h)
        # Tighten item 0's belief to a narrow band around 0.3: only the
        # lone 0.3-frequency anon survives.
        events = solver.ingest(
            Observation(kind="tighten", item=0, low=0.25, high=0.35)
        )
        assert any(e.kind == "forced" and e.item == 0 for e in events)

    def test_labels_ride_along(self, staircase_space):
        solver = solver_from_space(staircase_space)
        events = solver.bootstrap()
        forced = [e for e in events if e.kind == "forced"]
        assert forced and all(e.item_label and e.anon_label for e in forced)
        assert solver.certified_cracks() == 4

    def test_edge_guard_fires_before_materializing(self, bigmart_space_h):
        with pytest.raises(SolverError, match="edge guard"):
            solver_from_space(bigmart_space_h, max_edges=3)


class TestReducedBlocks:
    def test_forced_pairs_leave_no_blocks(self):
        classification = classify_adjacency(STAIRCASE)
        assert reduced_blocks(classification) == ()

    def test_two_blocks_shrink(self, two_blocks_space):
        adjacency = [
            list(two_blocks_space.candidates(i))
            for i in range(two_blocks_space.n)
        ]
        classification = classify_adjacency(adjacency)
        blocks = reduced_blocks(classification)
        assert blocks and max(block.n for block in blocks) <= 2


class TestCrackSessionStore:
    def test_open_step_close(self):
        store = CrackSessionStore()
        reply = store.step(
            {"instance": {"adjacency": STAIRCASE, "truth": [0, 1, 2, 3]}}
        )
        assert reply["summary"]["forced"] == 4
        assert reply["summary"]["certified_cracks"] == 4
        assert not reply["closed"]
        session = reply["session"]
        reply = store.step(
            {"session": session, "observations": [{"kind": "close"}]}
        )
        assert reply["closed"] and len(store) == 0
        with pytest.raises(SolverError, match="unknown or expired"):
            store.step({"session": session})

    def test_eviction_bounds_sessions(self):
        store = CrackSessionStore(max_sessions=2)
        ids = [
            store.step({"instance": {"adjacency": [[0, 1], [0, 1]]}})["session"]
            for _ in range(3)
        ]
        assert len(store) == 2
        with pytest.raises(SolverError, match="unknown or expired"):
            store.step({"session": ids[0]})

    def test_instance_validation(self):
        store = CrackSessionStore()
        with pytest.raises(SolverError):
            store.step({})
        with pytest.raises(SolverError):
            store.step({"instance": {"adjacency": []}})
        with pytest.raises(SolverError):
            store.step({"instance": {"profile": {"type": "nope"}}})
        with pytest.raises(SolverError):
            store.step(
                {
                    "instance": {"adjacency": STAIRCASE},
                    "session": "crack-1",
                }
            )

    def test_profile_instance_carries_truth_and_frequencies(self):
        from repro.data import FrequencyProfile
        from repro.io import profile_to_json

        profile = FrequencyProfile({1: 5, 2: 4, 3: 3, 4: 5}, 10)
        solver = solver_from_instance(
            {"profile": profile_to_json(profile), "delta": 0.01}
        )
        events = solver.bootstrap()
        # delta 0.01 separates every frequency group: items 2 and 3 are
        # singletons, the two 0.5-items stay a 2-block.
        assert solver.summary()["forced"] == 2
        assert solver.certified_cracks() == 2
        assert any(e.kind == "forced" for e in events)

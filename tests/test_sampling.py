"""Unit tests for transaction and profile sampling."""

import numpy as np
import pytest

from repro.data import FrequencyProfile, TransactionDatabase, sample_profile, sample_transactions
from repro.data.sampling import resolve_sample_size
from repro.errors import DataError


class TestResolveSampleSize:
    def test_rounding(self):
        assert resolve_sample_size(100, 0.1) == 10
        assert resolve_sample_size(100, 0.005) == 1  # at least one transaction

    def test_full_sample(self):
        assert resolve_sample_size(7, 1.0) == 7

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(DataError):
            resolve_sample_size(100, fraction)


class TestSampleTransactions:
    def test_size_and_domain(self, rng):
        db = TransactionDatabase([[1, 2]] * 50 + [[3]] * 50)
        sample = sample_transactions(db, 0.2, rng=rng)
        assert len(sample) == 20
        assert sample.domain == db.domain  # full domain kept

    def test_without_replacement(self, rng):
        db = TransactionDatabase([[i] for i in range(1, 21)])
        sample = sample_transactions(db, 1.0, rng=rng)
        # a full sample without replacement is a permutation of the rows
        from collections import Counter

        assert Counter(sample) == Counter(db)

    def test_sampled_frequencies_are_plausible(self, rng):
        db = TransactionDatabase([[1]] * 800 + [[2]] * 200)
        sample = sample_transactions(db, 0.5, rng=rng)
        assert sample.frequency(1) == pytest.approx(0.8, abs=0.1)


class TestSampleProfile:
    def test_size(self, rng):
        profile = FrequencyProfile({1: 30, 2: 60}, 100)
        sample = sample_profile(profile, 0.4, rng=rng)
        assert sample.n_transactions == 40
        assert sample.domain == profile.domain

    def test_counts_within_bounds(self, rng):
        profile = FrequencyProfile({1: 30, 2: 99, 3: 0}, 100)
        sample = sample_profile(profile, 0.3, rng=rng)
        for item in profile.domain:
            assert 0 <= sample.item_count(item) <= 30
        assert sample.item_count(3) == 0

    def test_full_sample_is_exact(self, rng):
        profile = FrequencyProfile({1: 30, 2: 60}, 100)
        sample = sample_profile(profile, 1.0, rng=rng)
        assert sample.counts == profile.counts

    def test_hypergeometric_mean(self, rng):
        profile = FrequencyProfile({1: 500}, 1000)
        draws = [sample_profile(profile, 0.1, rng=rng).item_count(1) for _ in range(200)]
        assert np.mean(draws) == pytest.approx(50, abs=3)

    def test_sure_items_stay_sure(self, rng):
        profile = FrequencyProfile({1: 100}, 100)
        sample = sample_profile(profile, 0.5, rng=rng)
        assert sample.frequency(1) == 1.0

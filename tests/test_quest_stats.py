"""Unit tests for the Quest generator and database statistics."""

import numpy as np
import pytest

from repro.data import TransactionDatabase, describe
from repro.datasets import QuestParameters, quest_database
from repro.errors import DataError
from repro.mining import apriori


@pytest.fixture
def quest_db(rng):
    params = QuestParameters(
        n_items=60,
        n_transactions=400,
        avg_transaction_size=8,
        avg_pattern_size=3,
        n_patterns=40,
    )
    return quest_database(params, rng=rng)


class TestQuestParameters:
    def test_defaults_valid(self):
        QuestParameters()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 0},
            {"avg_transaction_size": 0.5},
            {"correlation": 1.5},
            {"corruption_mean": 1.0},
            {"n_patterns": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(DataError):
            QuestParameters(**kwargs)


class TestQuestDatabase:
    def test_shape(self, quest_db):
        assert quest_db.n_transactions == 400
        assert quest_db.domain == frozenset(range(1, 61))
        assert all(transaction for transaction in quest_db)

    def test_transaction_sizes_near_target(self, quest_db):
        mean_size = sum(len(t) for t in quest_db) / len(quest_db)
        assert 4 <= mean_size <= 14  # Poisson(8)-ish after corruption

    def test_reproducible(self):
        params = QuestParameters(n_items=30, n_transactions=50, n_patterns=10)
        a = quest_database(params, rng=np.random.default_rng(3))
        b = quest_database(params, rng=np.random.default_rng(3))
        assert a == b

    def test_correlated_patterns_minable(self, quest_db):
        # The generator plants itemset structure: some multi-item
        # patterns must be frequent well above independence levels.
        itemsets = apriori(quest_db, min_support=0.05, max_size=3)
        multi = [fi for fi in itemsets if len(fi) >= 2]
        assert multi, "expected planted multi-item patterns to be frequent"


class TestDescribe:
    def test_database_statistics(self, bigmart_db):
        stats = describe(bigmart_db)
        assert stats.n_items == 6
        assert stats.n_transactions == 10
        assert stats.n_groups == 3
        assert stats.n_singleton_groups == 2
        assert stats.min_frequency == pytest.approx(0.3)
        assert stats.max_frequency == pytest.approx(0.5)
        assert stats.mean_transaction_length == pytest.approx(2.7)
        assert stats.min_transaction_length == 1
        assert stats.max_transaction_length == 4

    def test_density(self, bigmart_db):
        stats = describe(bigmart_db)
        assert stats.density == pytest.approx(27 / 60)

    def test_profile_has_no_lengths(self, bigmart_db):
        stats = describe(bigmart_db.to_profile())
        assert stats.mean_transaction_length is None
        assert stats.n_groups == 3

    def test_single_group_no_gaps(self):
        db = TransactionDatabase([[1, 2]] * 4)
        stats = describe(db)
        assert stats.gap_statistics is None

    def test_text_rendering(self, bigmart_db):
        text = describe(bigmart_db).to_text()
        assert "frequency groups" in text
        assert "transaction length" in text

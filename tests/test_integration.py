"""Integration tests: full owner/hacker workflows across modules."""

import numpy as np
import pytest

from repro.anonymize import anonymize
from repro.beliefs import from_sample_belief, uniform_width_belief
from repro.core import alpha_max, o_estimate
from repro.data import FrequencyGroups, read_fimi, sample_transactions, write_fimi
from repro.datasets import load_benchmark, random_database
from repro.graph import space_from_anonymized, space_from_frequencies
from repro.mining import apriori
from repro.recipe import Decision, assess_risk, similarity_by_sampling
from repro.simulation import simulate_expected_cracks


class TestOwnerWorkflow:
    """The full Figure 8 pipeline on a synthetic mid-size database."""

    @pytest.fixture
    def owner_db(self, rng):
        return random_database(30, 400, density=0.25, rng=rng)

    def test_assess_then_simulate(self, owner_db, rng):
        report = assess_risk(owner_db, tolerance=0.2, rng=rng)
        frequencies = owner_db.frequencies()
        belief = uniform_width_belief(
            frequencies, report.delta if report.delta is not None else 0.01
        )
        space = space_from_frequencies(belief, frequencies)
        estimate = o_estimate(space)
        simulated = simulate_expected_cracks(
            space, runs=3, samples_per_run=150, rng=rng
        )
        assert abs(estimate.value - simulated.mean) <= max(4 * simulated.std, 0.75)

    def test_recipe_stages_are_consistent(self, owner_db, rng):
        report = assess_risk(owner_db, tolerance=0.2, rng=rng)
        if report.decision is Decision.ALPHA_BOUND:
            assert report.interval_estimate.value > 0.2 * report.n_items
        if report.decision is Decision.DISCLOSE_POINT_VALUED:
            assert report.g <= 0.2 * report.n_items


class TestHackerWorkflow:
    """A hacker with a data sample attacks a released database."""

    def test_sample_belief_attack(self, rng):
        owner_db = random_database(25, 600, density=0.3, rng=rng)
        released = anonymize(owner_db, rng=rng)

        # The hacker holds 30% of similar data and builds a belief from it.
        sample = sample_transactions(owner_db, 0.3, rng=rng)
        belief = from_sample_belief(sample)

        space = space_from_anonymized(belief, released)
        estimate = o_estimate(space)
        compliancy = belief.compliancy(owner_db.frequencies())
        assert 0.0 <= compliancy <= 1.0
        # Items the belief guesses wrong can never be cracked: the OE sums
        # over at most the compliant items.
        assert estimate.n_compliant == round(compliancy * 25)

    def test_similarity_curve_guides_owner(self, rng):
        owner_db = random_database(25, 600, density=0.3, rng=rng)
        points = similarity_by_sampling(owner_db, [0.2, 0.8], n_samples=4, rng=rng)
        assert len(points) == 2


class TestMiningServiceScenario:
    """'Mining as a service': the provider mines anonymized data."""

    def test_patterns_survive_anonymization(self, rng):
        owner_db = random_database(12, 200, density=0.4, rng=rng)
        released = anonymize(owner_db, rng=rng)
        original = apriori(owner_db, 0.3)
        mined = apriori(released.database, 0.3)
        # Same number of patterns at every support level, same supports.
        assert sorted(fi.support for fi in original) == pytest.approx(
            sorted(fi.support for fi in mined)
        )


class TestFimiRoundtripWorkflow:
    def test_assess_a_fimi_file(self, tmp_path, rng):
        db = random_database(15, 300, density=0.3, rng=rng)
        path = tmp_path / "owner.dat"
        write_fimi(db, path)
        loaded = read_fimi(path)
        report = assess_risk(loaded, tolerance=0.5, rng=rng)
        assert report.n_items == 15


class TestBenchmarkWorkflow:
    def test_chess_full_pipeline(self):
        dataset = load_benchmark("chess")
        profile = dataset.profile
        frequencies = profile.frequencies()
        groups = FrequencyGroups(frequencies)
        belief = uniform_width_belief(frequencies, groups.median_gap())
        space = space_from_frequencies(belief, frequencies)
        estimate = o_estimate(space)
        simulated = simulate_expected_cracks(
            space, runs=3, samples_per_run=100, rng=np.random.default_rng(8)
        )
        # Figure 10's headline claim at reduced budget: OE within a few
        # standard deviations of the simulated estimate.
        assert abs(estimate.value - simulated.mean) <= max(
            4 * simulated.std, 0.05 * space.n
        )

    def test_alpha_max_matches_recipe(self):
        dataset = load_benchmark("mushroom")
        report = assess_risk(
            dataset.profile, tolerance=0.1, rng=np.random.default_rng(0)
        )
        assert report.decision is Decision.ALPHA_BOUND
        frequencies = dataset.profile.frequencies()
        groups = FrequencyGroups(frequencies)
        belief = uniform_width_belief(frequencies, groups.median_gap())
        space = space_from_frequencies(belief, frequencies)
        direct = alpha_max(space, 0.1, rng=np.random.default_rng(0))
        assert report.alpha_max == pytest.approx(direct, abs=0.1)

"""Unit and end-to-end tests for the risk-assessment service layer."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data import FrequencyProfile, TransactionDatabase, write_fimi
from repro.errors import RecipeError, ReproError
from repro.io import (
    SCHEMA_VERSION,
    assessment_from_json,
    assessment_to_json,
    load_json,
    profile_to_json,
    save_json,
)
from repro.recipe import assess_risk
from repro.service import (
    AssessmentCache,
    AssessmentEngine,
    AssessmentParams,
    ServiceMetrics,
    derived_seed,
    make_server,
    profile_fingerprint,
    request_fingerprint,
)


@pytest.fixture
def profile():
    """A 20-item profile that drives the recipe to the alpha stage."""
    return FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)


def small_profiles(count):
    """Distinct small profiles for batch tests."""
    return [
        FrequencyProfile({i: 30 * i + k for i in range(1, 16)}, 1000)
        for k in range(count)
    ]


class TestFingerprint:
    def test_item_order_does_not_matter(self):
        counts = {i: 7 * i for i in range(1, 30)}
        forward = FrequencyProfile(dict(sorted(counts.items())), 500)
        backward = FrequencyProfile(dict(sorted(counts.items(), reverse=True)), 500)
        assert profile_fingerprint(forward) == profile_fingerprint(backward)

    def test_counts_matter(self):
        a = FrequencyProfile({1: 5, 2: 9}, 20)
        b = FrequencyProfile({1: 5, 2: 8}, 20)
        assert profile_fingerprint(a) != profile_fingerprint(b)

    def test_n_transactions_matters(self):
        a = FrequencyProfile({1: 5, 2: 9}, 20)
        b = FrequencyProfile({1: 5, 2: 9}, 40)
        assert profile_fingerprint(a) != profile_fingerprint(b)

    def test_int_and_str_items_distinguished(self):
        a = FrequencyProfile({1: 5}, 20)
        b = FrequencyProfile({"1": 5}, 20)
        assert profile_fingerprint(a) != profile_fingerprint(b)

    def test_params_change_request_fingerprint(self, profile):
        base = request_fingerprint(profile, AssessmentParams(tolerance=0.1))
        assert base == request_fingerprint(profile, AssessmentParams(tolerance=0.1))
        assert base != request_fingerprint(profile, AssessmentParams(tolerance=0.2))
        assert base != request_fingerprint(
            profile, AssessmentParams(tolerance=0.1, delta=0.01)
        )
        assert base != request_fingerprint(
            profile, AssessmentParams(tolerance=0.1, runs=7)
        )
        assert base != request_fingerprint(
            profile, AssessmentParams(tolerance=0.1, seed=1)
        )
        assert base != request_fingerprint(
            profile, AssessmentParams(tolerance=0.1, interest=frozenset({1, 2}))
        )

    def test_interest_is_order_independent(self, profile):
        a = AssessmentParams(tolerance=0.1, interest=frozenset([1, 2, 3]))
        b = AssessmentParams(tolerance=0.1, interest=frozenset([3, 2, 1]))
        assert request_fingerprint(profile, a) == request_fingerprint(profile, b)

    def test_params_validated(self):
        with pytest.raises(RecipeError):
            AssessmentParams(tolerance=1.5)
        with pytest.raises(RecipeError):
            AssessmentParams(tolerance=0.1, runs=0)
        with pytest.raises(RecipeError):
            AssessmentParams(tolerance=0.1, interest=frozenset())

    def test_params_json_roundtrip(self):
        params = AssessmentParams(
            tolerance=0.25, delta=0.004, runs=7, seed=3, interest=frozenset([1, "a"])
        )
        assert AssessmentParams.from_json(params.to_json()) == params

    def test_derived_seed_deterministic_and_bounded(self, profile):
        fp = request_fingerprint(profile, AssessmentParams(tolerance=0.1))
        assert derived_seed(fp) == derived_seed(fp)
        assert 0 <= derived_seed(fp) < 2**63


class TestCache:
    def assessment(self, tolerance=0.5):
        return assess_risk(
            FrequencyProfile({i: 10 * i for i in range(1, 6)}, 100), tolerance
        )

    def test_hit_and_miss_counters(self):
        cache = AssessmentCache(capacity=4)
        assert cache.get("fp1") is None
        cache.put("fp1", self.assessment())
        assert cache.get("fp1") == self.assessment()
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["memory_hits"] == 1 and stats["size"] == 1

    def test_lru_eviction(self):
        cache = AssessmentCache(capacity=2)
        report = self.assessment()
        cache.put("a", report)
        cache.put("b", report)
        assert cache.get("a") is not None  # refresh "a"; "b" is now LRU
        cache.put("c", report)
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.stats()["evictions"] == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        report = self.assessment()
        AssessmentCache(directory=tmp_path).put("deadbeef", report)
        fresh = AssessmentCache(directory=tmp_path)
        assert fresh.get("deadbeef") == report
        assert fresh.stats()["disk_hits"] == 1

    def test_schema_version_invalidates_disk_entries(self, tmp_path):
        report = self.assessment()
        cache = AssessmentCache(directory=tmp_path)
        cache.put("cafe", report)
        path = tmp_path / "cafe.json"
        payload = load_json(path)
        payload["schema_version"] = SCHEMA_VERSION + 1
        save_json(payload, path)
        fresh = AssessmentCache(directory=tmp_path)
        assert fresh.get("cafe") is None
        assert not path.exists()  # stale artifact removed
        assert fresh.stats()["invalidated"] == 1

    def test_corrupt_disk_entry_is_discarded(self, tmp_path):
        cache = AssessmentCache(directory=tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None
        assert not (tmp_path / "bad.json").exists()

    def test_capacity_validated(self):
        with pytest.raises(ReproError):
            AssessmentCache(capacity=0)


class TestEngine:
    def test_warm_hit(self, profile):
        engine = AssessmentEngine()
        cold = engine.assess(profile, 0.1)
        warm = engine.assess(profile, 0.1)
        assert not cold.cached and warm.cached
        assert warm.assessment == cold.assessment
        assert warm.fingerprint == cold.fingerprint
        assert engine.metrics.counter("cache_hits") == 1

    def test_matches_one_shot_recipe(self, profile):
        engine = AssessmentEngine()
        outcome = engine.assess(profile, 0.1, runs=5)
        rng = np.random.default_rng(derived_seed(outcome.fingerprint))
        assert outcome.assessment == assess_risk(profile, 0.1, runs=5, rng=rng)

    def test_accepts_transaction_database(self):
        db = TransactionDatabase([[1, 2], [2, 3], [1, 2, 3], [3], [1]] * 4)
        engine = AssessmentEngine()
        outcome = engine.assess(db, 0.9)
        assert outcome.assessment == assess_risk(db, 0.9)
        # the profile collapse fingerprints identically to the database
        assert engine.assess(db.to_profile(), 0.9).cached

    def test_interest_recorded_and_cached_separately(self, profile):
        engine = AssessmentEngine()
        plain = engine.assess(profile, 0.1)
        subset = engine.assess(profile, 0.1, interest=[1, 2, 3])
        assert not subset.cached
        assert subset.assessment.interest == frozenset({1, 2, 3})
        assert plain.assessment.interest is None

    def test_sweep_tolerance_shares_space(self, profile):
        engine = AssessmentEngine()
        outcomes = engine.sweep_tolerance(profile, [0.05, 0.1, 0.2, 0.4])
        assert len(outcomes) == 4
        # one space construction served the whole sweep
        assert engine.metrics.snapshot()["timers"]["stage:space"]["count"] == 1
        for outcome, tolerance in zip(outcomes, [0.05, 0.1, 0.2, 0.4]):
            fresh = AssessmentEngine().assess(profile, tolerance)
            assert outcome.assessment == fresh.assessment

    def test_single_group_without_delta_raises(self):
        flat = FrequencyProfile({i: 50 for i in range(1, 6)}, 100)
        with pytest.raises(RecipeError, match="delta"):
            AssessmentEngine().assess(flat, 0.0)


class TestBatch:
    def test_identical_json_across_pool_sizes(self):
        requests = [
            (profile, AssessmentParams(tolerance=0.05))
            for profile in small_profiles(8)
        ]
        serial = AssessmentEngine().assess_many(requests, workers=1)
        parallel = AssessmentEngine().assess_many(requests, workers=4)
        assert all(r.ok for r in serial)
        serial_json = [
            json.dumps(assessment_to_json(r.assessment), sort_keys=True)
            for r in serial
        ]
        parallel_json = [
            json.dumps(assessment_to_json(r.assessment), sort_keys=True)
            for r in parallel
        ]
        assert serial_json == parallel_json

    @pytest.mark.parametrize("workers", [1, 3])
    def test_one_bad_job_does_not_kill_the_batch(self, workers):
        good = small_profiles(3)
        flat = FrequencyProfile({i: 50 for i in range(1, 6)}, 100)  # no gaps
        requests = [
            (good[0], AssessmentParams(tolerance=0.05)),
            (flat, AssessmentParams(tolerance=0.0)),  # RecipeError inside job
            (good[1], AssessmentParams(tolerance=0.05)),
            (good[2], AssessmentParams(tolerance=0.05)),
        ]
        results = AssessmentEngine().assess_many(requests, workers=workers)
        assert [r.ok for r in results] == [True, False, True, True]
        assert "RecipeError" in results[1].error
        assert [r.index for r in results] == [0, 1, 2, 3]

    def test_batch_serves_cache_hits(self, profile):
        engine = AssessmentEngine()
        engine.assess(profile, 0.1)
        results = engine.assess_many(
            [(profile, AssessmentParams(tolerance=0.1))], workers=1
        )
        assert results[0].cached and results[0].ok


class TestMetrics:
    def test_counters_and_timers(self):
        metrics = ServiceMetrics()
        metrics.increment("requests")
        metrics.increment("requests", 2)
        with metrics.timer("stage"):
            pass
        snap = metrics.snapshot()
        assert snap["counters"]["requests"] == 3
        assert snap["timers"]["stage"]["count"] == 1
        assert snap["timers"]["stage"]["total_seconds"] >= 0
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }

    def test_gauges(self):
        metrics = ServiceMetrics()
        assert metrics.gauge("inflight") == 0
        metrics.set_gauge("inflight", 3)
        assert metrics.gauge("inflight") == 3
        assert metrics.snapshot()["gauges"] == {"inflight": 3}
        metrics.set_gauge("inflight", 0)
        assert metrics.gauge("inflight") == 0


@pytest.fixture
def live_server():
    server = make_server(host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


class TestServer:
    def test_assess_roundtrip_and_cache(self, live_server, profile):
        payload = {"profile": profile_to_json(profile), "tolerance": 0.1}
        status, first = _post(f"{live_server}/assess", payload)
        assert status == 200
        assert not first["cached"]
        restored = assessment_from_json(first["assessment"])
        assert restored == AssessmentEngine().assess(profile, 0.1).assessment

        status, second = _post(f"{live_server}/assess", payload)
        assert status == 200
        assert second["cached"]
        assert second["assessment"] == first["assessment"]
        assert second["fingerprint"] == first["fingerprint"]

    def test_healthz_and_metrics(self, live_server):
        with urllib.request.urlopen(f"{live_server}/healthz") as response:
            assert json.loads(response.read())["status"] == "ok"
        with urllib.request.urlopen(f"{live_server}/metrics") as response:
            body = json.loads(response.read())
        assert "counters" in body["metrics"]
        assert body["cache"]["capacity"] >= 1

    def test_bad_request_is_400(self, live_server, profile):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{live_server}/assess", {"tolerance": 0.1})
        with excinfo.value as error:
            assert error.code == 400
            body = json.loads(error.read())
        assert body["status"] == 400
        assert body["error"]["type"] == "ValueError"
        assert "profile" in body["error"]["message"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{live_server}/assess",
                {"profile": profile_to_json(profile), "tolerance": 7.0},
            )
        with excinfo.value as error:
            assert error.code == 400

    def test_unknown_path_is_404(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{live_server}/nope")
        with excinfo.value as error:
            assert error.code == 404
            body = json.loads(error.read())
        assert body["error"]["type"] == "NotFound"


class TestBatchCLI:
    def write_manifest(self, tmp_path, datasets, defaults=None):
        manifest = {"defaults": defaults or {"tolerance": 0.1}, "datasets": datasets}
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        return str(path)

    def test_manifest_batch(self, tmp_path, capsys):
        from repro.cli import batch_main

        db = TransactionDatabase([[1, 2], [2, 3], [1, 2, 3], [3], [1]] * 4)
        fimi = tmp_path / "tiny.dat"
        write_fimi(db, fimi)
        manifest = self.write_manifest(
            tmp_path,
            [
                {"benchmark": "chess", "name": "chess-q1", "runs": 3},
                {"fimi": str(fimi), "tolerance": 0.9},
            ],
        )
        output = tmp_path / "results.jsonl"
        assert batch_main([manifest, "--workers", "2", "--output", str(output)]) == 0
        records = [json.loads(line) for line in output.read_text().splitlines()]
        assert [record["name"] for record in records] == ["chess-q1", str(fimi)]
        assert all("assessment" in record for record in records)
        decisions = [record["assessment"]["decision"] for record in records]
        assert decisions[1] == "DISCLOSE_POINT_VALUED"

    def test_bad_entry_reported_not_fatal(self, tmp_path, capsys):
        from repro.cli import batch_main

        manifest = self.write_manifest(
            tmp_path,
            [
                {"benchmark": "chess"},
                {"fimi": "/nonexistent/file.dat"},
                {"benchmark": "mushroom", "tolerance": 9.0},
            ],
        )
        assert batch_main([manifest]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert "assessment" in records[0]
        assert "FileNotFoundError" in records[1]["error"]
        assert "RecipeError" in records[2]["error"]

    def test_all_failed_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import batch_main

        manifest = self.write_manifest(tmp_path, [{"fimi": "/nonexistent.dat"}])
        assert batch_main([manifest]) == 1

    def test_malformed_manifest_is_fatal(self, tmp_path, capsys):
        from repro.cli import batch_main

        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"datasets": "nope"}))
        assert batch_main([str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_cache_dir_warm_start(self, tmp_path, capsys):
        from repro.cli import batch_main

        manifest = self.write_manifest(tmp_path, [{"benchmark": "chess", "runs": 3}])
        cache_dir = str(tmp_path / "cache")
        assert batch_main([manifest, "--cache-dir", cache_dir]) == 0
        first = json.loads(capsys.readouterr().out.splitlines()[0])
        assert batch_main([manifest, "--cache-dir", cache_dir]) == 0
        second = json.loads(capsys.readouterr().out.splitlines()[0])
        assert not first["cached"] and second["cached"]
        assert first["assessment"] == second["assessment"]


class TestVersionFlags:
    @pytest.mark.parametrize("entry", ["main", "batch_main", "serve_main"])
    def test_version_flag(self, entry, capsys):
        import repro.cli as cli

        with pytest.raises(SystemExit) as excinfo:
            getattr(cli, entry)(["--version"])
        assert excinfo.value.code == 0
        assert "1." in capsys.readouterr().out

    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.capacity == 256


class TestProtectSkipNote:
    def test_note_printed_when_recipe_discloses(self, capsys):
        from repro.cli import main

        # tolerance 1.0 always discloses at the point-valued stage
        code = main(["--benchmark", "chess", "--tolerance", "1.0", "--protect", "bin"])
        assert code == 0
        assert "protection skipped" in capsys.readouterr().out


class TestCrackEndpoint:
    STAIRCASE = [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]]

    def test_open_stream_close(self, live_server):
        status, reply = _post(
            f"{live_server}/crack/step",
            {"instance": {"adjacency": self.STAIRCASE, "truth": [0, 1, 2, 3]}},
        )
        assert status == 200
        assert reply["summary"]["forced"] == 4
        assert reply["summary"]["certified_cracks"] == 4
        forced = [e for e in reply["events"] if e["event"] == "forced"]
        assert [e["anon"] for e in forced] == [0, 1, 2, 3]
        assert all(e["crack"] for e in forced)

        session = reply["session"]
        status, reply = _post(
            f"{live_server}/crack/step",
            {
                "session": session,
                "observations": [
                    {"kind": "confirm", "item": 0, "anon": 0},
                    {"kind": "close"},
                ],
            },
        )
        assert status == 200
        assert reply["closed"]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{live_server}/crack/step", {"session": session})
        with excinfo.value as error:
            assert error.code == 422
            body = json.loads(error.read())
        assert body["error"]["type"] == "SolverError"

    def test_contradiction_turns_infeasible(self, live_server):
        status, reply = _post(
            f"{live_server}/crack/step",
            {"instance": {"adjacency": self.STAIRCASE}},
        )
        session = reply["session"]
        status, reply = _post(
            f"{live_server}/crack/step",
            {
                "session": session,
                "observations": [{"kind": "confirm", "item": 1, "anon": 0}],
            },
        )
        assert status == 200
        assert reply["summary"]["infeasible"]
        assert [e["event"] for e in reply["events"]] == ["infeasible"]

    def test_malformed_requests(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{live_server}/crack/step", {"instance": {"adjacency": []}})
        with excinfo.value as error:
            assert error.code == 422
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{live_server}/crack/step", {})
        with excinfo.value as error:
            assert error.code == 422


class TestAttackSummaryParity:
    def test_engine_attack_matches_recipe(self, profile):
        from repro.recipe import assess_risk

        outcome = AssessmentEngine().assess(profile, 0.01)
        direct = assess_risk(profile, 0.01)
        assert outcome.assessment.attack == direct.attack
        assert outcome.assessment.attack is not None


class TestCrackSessionConcurrency:
    """Regression: CC001 found ``step`` touching solvers outside any lock."""

    ADJACENCY = [[0, 1], [0, 1], [2, 3], [2, 3]]

    def test_parallel_steps_on_one_session_serialize(self):
        from repro.service.crack import CrackSessionStore

        store = CrackSessionStore()
        reply = store.step({"instance": {"adjacency": self.ADJACENCY}})
        session = reply["session"]

        errors = []
        steps_seen = []
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(25):
                try:
                    result = store.step(
                        {
                            "session": session,
                            "observations": [
                                {"kind": "confirm", "item": 0, "anon": 0}
                            ],
                        }
                    )
                    # The summary must always be internally consistent:
                    # a torn solver shows up as a summary read mid-step.
                    summary = result["summary"]
                    assert not summary["infeasible"]
                    steps_seen.append(summary["step"])
                except Exception as exc:  # pragma: no cover - the regression
                    errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Steps serialized: 8 threads x 25 ingests, every one counted.
        assert max(steps_seen) == 8 * 25

    def test_parallel_opens_get_distinct_sessions(self):
        from repro.service.crack import CrackSessionStore

        store = CrackSessionStore()
        sessions = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def open_one():
            barrier.wait()
            reply = store.step({"instance": {"adjacency": self.ADJACENCY}})
            with lock:
                sessions.append(reply["session"])

        threads = [threading.Thread(target=open_one) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(sessions)) == 8


class TestLeaseConcurrency:
    """Regression: CC001 found heartbeat/release racing on lease state."""

    def test_concurrent_heartbeat_and_release(self, tmp_path):
        from repro.service.lease import acquire_lease

        for _ in range(10):
            path = tmp_path / "x.lease"
            lease = acquire_lease(path)
            assert lease is not None
            lease.start_heartbeat(0.001)
            lease.heartbeat()
            release_errors = []

            def do_release():
                try:
                    lease.release()
                except Exception as exc:  # pragma: no cover - the regression
                    release_errors.append(exc)

            thread = threading.Thread(target=do_release)
            thread.start()
            thread.join()
            assert not release_errors
            assert lease.released
            assert not path.exists()
            path.unlink(missing_ok=True)

    def test_heartbeat_after_release_raises_cleanly(self, tmp_path):
        from repro.service.lease import acquire_lease

        lease = acquire_lease(tmp_path / "y.lease")
        lease.release()
        with pytest.raises(ReproError):
            lease.heartbeat()

    def test_stop_heartbeat_joins_daemon(self, tmp_path):
        from repro.service.lease import acquire_lease

        lease = acquire_lease(tmp_path / "z.lease")
        lease.start_heartbeat(0.001)
        time.sleep(0.02)
        lease.stop_heartbeat()
        beats = lease.heartbeat()  # still acquirable after stop
        assert beats >= 1
        lease.release()

    def test_double_start_is_idempotent(self, tmp_path):
        from repro.service.lease import acquire_lease

        lease = acquire_lease(tmp_path / "w.lease")
        lease.start_heartbeat(0.001)
        lease.start_heartbeat(0.001)  # second call must not spawn again
        lease.release()

"""Unit tests for anonymization mappings and database anonymization."""

import pytest

from repro.anonymize import AnonymizationMapping, anonymize
from repro.anonymize.mapping import AnonymizedItem
from repro.data import TransactionDatabase
from repro.errors import DataError, DomainMismatchError


class TestAnonymizedItem:
    def test_distinct_from_plain_ints(self):
        assert AnonymizedItem(1) != 1
        assert hash(AnonymizedItem(1)) != hash(1)

    def test_equality_and_order(self):
        assert AnonymizedItem(2) == AnonymizedItem(2)
        assert AnonymizedItem(1) < AnonymizedItem(2)

    def test_repr_is_primed(self):
        assert repr(AnonymizedItem(3)) == "3'"


class TestAnonymizationMapping:
    def test_random_is_bijective(self, rng):
        mapping = AnonymizationMapping.random(range(1, 51), rng=rng)
        images = {mapping.anonymize_item(i) for i in range(1, 51)}
        assert len(images) == 50
        assert images == mapping.anonymized_domain

    def test_roundtrip(self, rng):
        mapping = AnonymizationMapping.random(["a", "b", "c"], rng=rng)
        for item in ["a", "b", "c"]:
            assert mapping.deanonymize_item(mapping.anonymize_item(item)) == item

    def test_identity_labels_deterministic(self):
        mapping = AnonymizationMapping.identity_labels([10, 20, 30])
        assert mapping.anonymize_item(10) == AnonymizedItem(1)
        assert mapping.anonymize_item(30) == AnonymizedItem(3)

    def test_empty_domain_rejected(self):
        with pytest.raises(DataError):
            AnonymizationMapping.random([])

    def test_non_injective_rejected(self):
        with pytest.raises(DataError, match="injective"):
            AnonymizationMapping.from_dict({1: AnonymizedItem(1), 2: AnonymizedItem(1)})

    def test_non_anonymized_target_rejected(self):
        with pytest.raises(DataError):
            AnonymizationMapping.from_dict({1: 2})

    def test_unknown_item_raises(self, rng):
        mapping = AnonymizationMapping.random([1, 2], rng=rng)
        with pytest.raises(DomainMismatchError):
            mapping.anonymize_item(99)
        with pytest.raises(DomainMismatchError):
            mapping.deanonymize_item(AnonymizedItem(99))

    def test_count_cracks(self):
        mapping = AnonymizationMapping.identity_labels([1, 2, 3])
        correct = {AnonymizedItem(1): 1, AnonymizedItem(2): 2, AnonymizedItem(3): 3}
        assert mapping.count_cracks(correct) == 3
        wrong = {AnonymizedItem(1): 2, AnonymizedItem(2): 1, AnonymizedItem(3): 3}
        assert mapping.count_cracks(wrong) == 1


class TestAnonymize:
    def test_preserves_frequencies(self, bigmart_db, rng):
        released = anonymize(bigmart_db, rng=rng)
        original = sorted(bigmart_db.frequencies().values())
        observed = sorted(released.observed_frequencies().values())
        assert observed == pytest.approx(original)

    def test_preserves_transaction_sizes(self, bigmart_db, rng):
        released = anonymize(bigmart_db, rng=rng)
        assert sorted(len(t) for t in released.database) == sorted(
            len(t) for t in bigmart_db
        )

    def test_mapping_applied_uniformly(self, rng):
        db = TransactionDatabase([[1, 2], [1], [1, 3]])
        released = anonymize(db, rng=rng)
        one_prime = released.mapping.anonymize_item(1)
        assert all(one_prime in t for t in released.database)

    def test_explicit_mapping(self, bigmart_db):
        mapping = AnonymizationMapping.identity_labels(bigmart_db.domain)
        released = anonymize(bigmart_db, mapping=mapping)
        assert released.mapping is mapping
        assert released.database.frequency(AnonymizedItem(5)) == pytest.approx(0.3)

    def test_domains_are_disjoint(self, bigmart_db, rng):
        released = anonymize(bigmart_db, rng=rng)
        assert not (released.database.domain & bigmart_db.domain)

"""Smoke tests: every shipped example runs end to end.

Examples are the library's living documentation; these tests execute
them in-process (with the CWD pointed at a temp directory so artifact
files land there) and assert on their key printed claims.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, monkeypatch, tmp_path, capsys, argv=None) -> str:
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [name] + list(argv or []))
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, tmp_path, capsys):
    out = run_example("quickstart.py", monkeypatch, tmp_path, capsys)
    assert "hacker with no knowledge" in out
    assert "decision:" in out


def test_mining_as_a_service(monkeypatch, tmp_path, capsys):
    out = run_example("mining_as_a_service.py", monkeypatch, tmp_path, capsys)
    assert "provider returns" in out
    assert "most exposed products" in out


def test_consortium_pooling(monkeypatch, tmp_path, capsys):
    out = run_example("consortium_pooling.py", monkeypatch, tmp_path, capsys)
    assert "Similarity-by-Sampling curve" in out
    assert "alpha" in out


def test_beyond_frequent_sets(monkeypatch, tmp_path, capsys):
    out = run_example("beyond_frequent_sets.py", monkeypatch, tmp_path, capsys)
    assert "identified with certainty: Wei" in out
    assert "forced set" in out


def test_protected_release(monkeypatch, tmp_path, capsys):
    out = run_example("protected_release.py", monkeypatch, tmp_path, capsys)
    assert "protected release:" in out
    assert (tmp_path / "protected_assessment.json").exists()


def test_red_team(monkeypatch, tmp_path, capsys):
    out = run_example("red_team.py", monkeypatch, tmp_path, capsys)
    assert "posterior for anonymized item" in out
    assert "achieved" in out


@pytest.mark.slow
def test_benchmark_tour(monkeypatch, tmp_path, capsys):
    out = run_example(
        "benchmark_tour.py", monkeypatch, tmp_path, capsys, argv=["chess"]
    )
    assert "alpha sweep" in out

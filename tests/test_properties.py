"""Cross-module property tests: the invariants that tie the library together.

Hypothesis-driven checks of the equivalences and laws the design relies
on: the compact frequency-group mapping space agrees edge-for-edge with
an explicit reconstruction; the samplers are unbiased against exhaustive
enumeration; OE is invariant under the actual anonymization permutation;
the paper's ordering lemmas hold on random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymize import anonymize
from repro.beliefs import (
    alpha_compliant_belief,
    interval_belief,
    uniform_width_belief,
)
from repro.core import o_estimate
from repro.datasets import random_database
from repro.graph import (
    ExplicitMappingSpace,
    crack_distribution,
    expected_cracks_direct,
    space_from_anonymized,
    space_from_frequencies,
)
from repro.simulation import simulate_expected_cracks

seeds = st.integers(0, 2**31)


def random_frequencies(rng, n, resolution=20):
    """Frequencies on a coarse grid so collisions (groups) are common."""
    return {
        i: float(rng.integers(1, resolution + 1)) / resolution
        for i in range(1, n + 1)
    }


def random_interval_belief(rng, frequencies, compliant=True):
    intervals = {}
    for item, f in frequencies.items():
        width = float(rng.random()) * 0.4
        if compliant:
            center = f
        else:
            center = float(rng.random())
        intervals[item] = (max(0.0, center - width), min(1.0, center + width))
    return interval_belief(intervals)


class TestCompactExplicitEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seed=seeds, n=st.integers(2, 25))
    def test_same_edges_and_outdegrees(self, seed, n):
        rng = np.random.default_rng(seed)
        frequencies = random_frequencies(rng, n)
        belief = random_interval_belief(rng, frequencies, compliant=bool(rng.integers(2)))
        compact = space_from_frequencies(belief, frequencies)
        explicit = ExplicitMappingSpace(
            items=compact.items,
            anonymized=compact.anonymized,
            adjacency=[list(compact.candidates(i)) for i in range(n)],
            true_partner_of=[compact.true_partner(i) for i in range(n)],
        )
        assert list(compact.outdegrees()) == list(explicit.outdegrees())
        for i in range(n):
            for j in range(n):
                assert compact.is_edge(i, j) == explicit.is_edge(i, j)
        assert list(compact.compliant_indices()) == list(explicit.compliant_indices())
        assert o_estimate(compact).value == pytest.approx(o_estimate(explicit).value)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n=st.integers(2, 7))
    def test_direct_method_agrees_across_forms(self, seed, n):
        rng = np.random.default_rng(seed)
        frequencies = random_frequencies(rng, n, resolution=4)
        belief = random_interval_belief(rng, frequencies)
        compact = space_from_frequencies(belief, frequencies)
        explicit = ExplicitMappingSpace(
            items=compact.items,
            anonymized=compact.anonymized,
            adjacency=[list(compact.candidates(i)) for i in range(n)],
            true_partner_of=[compact.true_partner(i) for i in range(n)],
        )
        assert expected_cracks_direct(compact) == pytest.approx(
            expected_cracks_direct(explicit)
        )


class TestAnonymizationInvariance:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_oe_independent_of_the_renaming(self, seed):
        rng = np.random.default_rng(seed)
        db = random_database(10, 60, density=0.4, rng=rng)
        frequencies = db.frequencies()
        belief = uniform_width_belief(frequencies, 0.05)
        via_frequencies = o_estimate(space_from_frequencies(belief, frequencies))
        for _ in range(3):
            released = anonymize(db, rng=rng)
            via_release = o_estimate(space_from_anonymized(belief, released))
            assert via_release.value == pytest.approx(via_frequencies.value)


class TestSamplerUnbiasedness:
    @pytest.mark.parametrize("method", ["swap", "gibbs"])
    def test_against_enumeration(self, method):
        rng = np.random.default_rng(20)
        frequencies = random_frequencies(rng, 6, resolution=3)
        belief = random_interval_belief(rng, frequencies)
        space = space_from_frequencies(belief, frequencies)
        exact = expected_cracks_direct(space)
        result = simulate_expected_cracks(
            space,
            runs=5,
            samples_per_run=500,
            rng=np.random.default_rng(21),
            method=method,
        )
        assert result.mean == pytest.approx(exact, abs=max(4 * result.std, 0.15))

    def test_distribution_support(self):
        # Every sampled matching count must be attainable per the exact law.
        rng = np.random.default_rng(30)
        frequencies = random_frequencies(rng, 5, resolution=2)
        belief = random_interval_belief(rng, frequencies)
        space = space_from_frequencies(belief, frequencies)
        law = crack_distribution(space)
        attainable = {k for k, p in enumerate(law) if p > 0}
        from repro.simulation import MatchingSampler

        sampler = MatchingSampler(space, rng=np.random.default_rng(31))
        for _ in range(200):
            sampler.sweep(2)
            assert sampler.crack_count() in attainable


class TestOrderingLaws:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=st.integers(3, 20))
    def test_alpha_monotone_under_nested_noncompliance(self, seed, n):
        # Lemma 10 operationally: growing the non-compliant set through
        # the builder never raises the O-estimate.
        rng = np.random.default_rng(seed)
        frequencies = random_frequencies(rng, n)
        items = sorted(frequencies, key=repr)
        order = [items[int(k)] for k in rng.permutation(n)]
        previous = float("inf")
        for n_wrong in range(0, n + 1, max(1, n // 4)):
            belief = alpha_compliant_belief(
                frequencies,
                alpha=1.0,
                delta=0.05,
                rng=np.random.default_rng(seed),
                noncompliant_items=order[:n_wrong],
            )
            space = space_from_frequencies(belief, frequencies)
            value = o_estimate(space).value
            assert value <= previous + 1e-9
            previous = value

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=st.integers(2, 15))
    def test_oe_bounded_by_domain(self, seed, n):
        rng = np.random.default_rng(seed)
        frequencies = random_frequencies(rng, n)
        belief = random_interval_belief(rng, frequencies, compliant=bool(rng.integers(2)))
        space = space_from_frequencies(belief, frequencies)
        value = o_estimate(space).value
        assert 0.0 <= value <= n


class TestMiningAnonymizationCommutes:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_support_multiset_invariant(self, seed):
        from repro.mining import fp_growth

        rng = np.random.default_rng(seed)
        db = random_database(8, 50, density=0.4, rng=rng)
        released = anonymize(db, rng=rng)
        original = sorted(
            (fi.support, len(fi.items)) for fi in fp_growth(db, 0.2)
        )
        mined = sorted(
            (fi.support, len(fi.items)) for fi in fp_growth(released.database, 0.2)
        )
        assert original == mined

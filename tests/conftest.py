"""Shared fixtures: the paper's worked examples and small workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beliefs import interval_belief, point_belief
from repro.data import TransactionDatabase
from repro.graph import ExplicitMappingSpace, space_from_frequencies


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def bigmart_frequencies():
    """Item frequencies of the paper's BigMart example (Figures 1-3)."""
    return {1: 0.5, 2: 0.4, 3: 0.5, 4: 0.5, 5: 0.3, 6: 0.5}


@pytest.fixture
def bigmart_db():
    """A 10-transaction database realizing the BigMart frequencies."""
    windows = {1: range(0, 5), 2: range(3, 7), 3: range(5, 10), 4: range(2, 7), 5: range(7, 10), 6: range(5, 10)}
    transactions = [
        {item for item, window in windows.items() if t in window} for t in range(10)
    ]
    return TransactionDatabase(transactions, domain=range(1, 7))


@pytest.fixture
def belief_h():
    """The compliant interval belief function ``h`` of Figure 2."""
    return interval_belief(
        {1: (0, 1), 2: (0.4, 0.5), 3: 0.5, 4: (0.4, 0.6), 5: (0.1, 0.4), 6: 0.5}
    )


@pytest.fixture
def belief_f(bigmart_frequencies):
    """The compliant point-valued belief function ``f`` of Figure 2."""
    return point_belief(bigmart_frequencies)


@pytest.fixture
def bigmart_space_h(belief_h, bigmart_frequencies):
    """Mapping space of belief ``h`` over the BigMart frequencies."""
    return space_from_frequencies(belief_h, bigmart_frequencies)


@pytest.fixture
def staircase_space():
    """Figure 6(a)'s staircase: raw OE 25/12, true expected cracks 4."""
    return ExplicitMappingSpace(
        items=("a", "b", "c", "d"),
        anonymized=("a'", "b'", "c'", "d'"),
        adjacency=[[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]],
        true_partner_of=[0, 1, 2, 3],
    )


@pytest.fixture
def two_blocks_space():
    """Figure 6(b): {1',2'} forced onto {1,2} and {3',4'} onto {3,4}."""
    return ExplicitMappingSpace(
        items=(1, 2, 3, 4),
        anonymized=("1'", "2'", "3'", "4'"),
        adjacency=[[0, 1], [0, 1], [1, 2, 3], [2, 3]],
        true_partner_of=[0, 1, 2, 3],
    )

"""Unit tests for observed-group and belief-group structures."""


from repro.graph.groups import BeliefGroupPartition, ObservedGroups


class TestObservedGroups:
    def test_structure(self):
        groups = ObservedGroups([0.5, 0.4, 0.5, 0.5, 0.3, 0.5])
        assert len(groups) == 3
        assert groups.freqs == (0.3, 0.4, 0.5)
        assert tuple(groups.counts) == (1, 1, 4)
        assert tuple(groups.prefix) == (0, 1, 2, 6)

    def test_members_and_group_of(self):
        groups = ObservedGroups([0.5, 0.4, 0.3])
        assert groups.members[0] == (2,)
        assert groups.group_of[0] == 2

    def test_group_range(self):
        groups = ObservedGroups([0.1, 0.2, 0.3, 0.4])
        assert groups.group_range(0.15, 0.35) == (1, 3)
        assert groups.group_range(0.2, 0.2) == (1, 2)
        assert groups.group_range(0.45, 0.9) == (4, 4)  # empty run

    def test_count_in_range_is_outdegree(self):
        groups = ObservedGroups([0.5, 0.4, 0.5, 0.5, 0.3, 0.5])
        assert groups.count_in_range(0.4, 0.5) == 5
        assert groups.count_in_range(0.0, 1.0) == 6
        assert groups.count_in_range(0.31, 0.39) == 0

    def test_closed_endpoints(self):
        groups = ObservedGroups([0.3, 0.5])
        assert groups.count_in_range(0.3, 0.5) == 2
        assert groups.count_in_range(0.3, 0.3) == 1

    def test_group_index_of_frequency(self):
        groups = ObservedGroups([0.3, 0.5])
        assert groups.group_index_of_frequency(0.5) == 1
        assert groups.group_index_of_frequency(0.4) is None


class TestBeliefGroupPartition:
    def test_partition_merges_equal_runs(self):
        partition = BeliefGroupPartition([(0, 1), (0, 1), (1, 3), (0, 2)])
        assert len(partition) == 3
        runs = {group.group_range: group.items for group in partition}
        assert runs[(0, 1)] == (0, 1)

    def test_is_chain_true(self):
        # exclusive on 0, shared 0-1, exclusive on 1: a chain of length 2
        partition = BeliefGroupPartition([(0, 1), (0, 2), (1, 2)])
        assert partition.is_chain(2)

    def test_is_chain_rejects_wide_groups(self):
        partition = BeliefGroupPartition([(0, 3), (0, 1), (1, 2), (2, 3)])
        assert not partition.is_chain(3)

    def test_is_chain_requires_coverage(self):
        partition = BeliefGroupPartition([(0, 1), (0, 2)])
        assert not partition.is_chain(3)  # group 2 unreachable

    def test_bigmart_belief_groups(self, bigmart_space_h):
        # Paper, Section 3.2: under belief h, items 2 and 4 share a group
        # even though their intervals differ.
        partition = bigmart_space_h.belief_groups()
        by_items = {
            tuple(bigmart_space_h.items[i] for i in group.items): group.group_range
            for group in partition
        }
        assert by_items[(2, 4)] == by_items.get((2, 4))
        grouped_items = sorted(by_items)
        assert (2, 4) in grouped_items

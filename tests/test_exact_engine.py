"""The structure-exploiting exact engine vs Ryser and enumeration.

Property sweeps: on hundreds of random small interval and
alpha-compliant instances, the consecutive-ones DP and the
block-decomposed engines must agree with Ryser *exactly* (counts are
integers below 2**53, so float equality is exact), and every strategy's
``expected_cracks_direct`` must match the mean of its
``crack_distribution``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.beliefs import interval_belief
from repro.errors import GraphError, InfeasibleMatchingError
from repro.graph import (
    ExplicitMappingSpace,
    count_matchings_exact,
    crack_distribution,
    crack_distribution_exact,
    crack_marginals,
    crack_marginals_exact,
    decompose,
    enumerate_consistent_matchings,
    exact_strategy,
    expected_cracks_direct,
    expected_cracks_exact,
    permanent,
    space_from_frequencies,
)
from repro.graph.intervaldp import (
    DPBudget,
    assignment_count,
    class_pin_counts,
    class_placement_totals,
)
from repro.graph.permanent import ryser_int_python as _ryser
from repro.simulation import best_expected_cracks


def random_interval_space(rng: np.random.Generator, alpha_compliant: bool = False):
    """A random small frequency space with interval beliefs.

    With ``alpha_compliant=True`` some items get intervals that *miss*
    their true frequency (the alpha-compliant hacker of Section 6), so
    non-compliant items and empty runs both occur.
    """
    n = int(rng.integers(3, 9))
    n_groups = int(rng.integers(2, min(n, 5) + 1))
    step = 0.8 / n_groups
    frequencies = {
        i: round(0.1 + step * int(rng.integers(0, n_groups)), 9) for i in range(n)
    }
    intervals = {}
    for i, f in frequencies.items():
        lo_w = step * int(rng.integers(0, 3))
        hi_w = step * int(rng.integers(0, 3))
        low, high = max(0.0, f - lo_w), min(1.0, f + hi_w)
        if alpha_compliant and rng.random() < 0.3:
            # Shift the interval off the true frequency.
            shift = step * (1 + int(rng.integers(0, 2)))
            low, high = min(low + shift, 1.0), min(high + shift, 1.0)
        intervals[i] = (low, high)
    return space_from_frequencies(interval_belief(intervals), frequencies)


def random_explicit_space(rng: np.random.Generator):
    n = int(rng.integers(2, 9))
    adjacency = []
    for i in range(n):
        extra = {int(j) for j in range(n) if rng.random() < 0.35}
        row = sorted(extra | {i}) if rng.random() < 0.8 else sorted(extra or {i})
        adjacency.append(row)
    return ExplicitMappingSpace(
        items=tuple(range(n)),
        anonymized=tuple(f"{i}'" for i in range(n)),
        adjacency=adjacency,
        true_partner_of=list(rng.permutation(n).astype(int)),
    )


def enumeration_marginals(space) -> np.ndarray:
    hits = np.zeros(space.n)
    total = 0
    for assignment in enumerate_consistent_matchings(space):
        total += 1
        for i, j in enumerate(assignment):
            if j == space.true_partner(i):
                hits[i] += 1
    if total == 0:
        raise InfeasibleMatchingError("no matching")
    return hits / total


class TestCountAgreement:
    def test_interval_instances_match_ryser(self):
        """>= 200 random interval instances: DP count == Ryser, exactly."""
        rng = np.random.default_rng(2024)
        checked = 0
        while checked < 200:
            space = random_interval_space(rng)
            ryser = _ryser(space.adjacency_matrix())
            assert float(count_matchings_exact(space)) == ryser
            checked += 1

    def test_alpha_compliant_instances_match_ryser(self):
        rng = np.random.default_rng(7)
        checked = 0
        while checked < 100:
            space = random_interval_space(rng, alpha_compliant=True)
            ryser = _ryser(space.adjacency_matrix())
            assert float(count_matchings_exact(space)) == ryser
            checked += 1

    def test_explicit_instances_match_ryser(self):
        rng = np.random.default_rng(99)
        for _ in range(100):
            space = random_explicit_space(rng)
            ryser = _ryser(space.adjacency_matrix())
            assert float(count_matchings_exact(space)) == ryser


class TestMarginalAgreement:
    def test_interval_marginals_match_enumeration(self):
        rng = np.random.default_rng(11)
        checked = 0
        while checked < 60:
            space = random_interval_space(rng)
            try:
                truth = enumeration_marginals(space)
            except InfeasibleMatchingError:
                with pytest.raises(InfeasibleMatchingError):
                    crack_marginals_exact(space)
                continue
            assert crack_marginals_exact(space) == pytest.approx(truth, abs=1e-12)
            checked += 1

    def test_explicit_marginals_match_enumeration(self):
        rng = np.random.default_rng(12)
        checked = 0
        while checked < 60:
            space = random_explicit_space(rng)
            try:
                truth = enumeration_marginals(space)
            except InfeasibleMatchingError:
                continue
            assert crack_marginals_exact(space) == pytest.approx(truth, abs=1e-12)
            checked += 1

    def test_expected_matches_distribution_mean_every_strategy(self):
        """E[X] == mean of P(X = k) on interval and explicit strategies."""
        rng = np.random.default_rng(13)
        seen = set()
        for _ in range(120):
            space = (
                random_interval_space(rng)
                if rng.random() < 0.5
                else random_explicit_space(rng)
            )
            plan = exact_strategy(space)
            try:
                law = crack_distribution_exact(space)
            except InfeasibleMatchingError:
                continue
            mean = float((np.arange(len(law)) * law).sum())
            assert expected_cracks_exact(space) == pytest.approx(mean, abs=1e-9)
            seen.add(plan.strategy)
        assert {"interval-dp", "ryser"} <= seen  # both engine families hit

    def test_placement_totals_match_pin_counts(self):
        rng = np.random.default_rng(21)
        for _ in range(40):
            space = random_interval_space(rng)
            decomposition = decompose(space)
            if not decomposition.matchable:
                continue
            for block in decomposition.blocks:
                a, b = block.group_range
                capacities = tuple(
                    int(c) for c in space.groups.counts[a:b]
                )
                classes: dict[tuple[int, int], int] = {}
                for i in block.item_indices:
                    lo, hi = space.admissible_run(i)
                    run = (lo - a, hi - a)
                    classes[run] = classes.get(run, 0) + 1
                total, totals = class_placement_totals(capacities, classes)
                assert total == assignment_count(capacities, classes)
                pins = [
                    (run, g) for run in classes for g in range(run[0], run[1])
                ]
                pinned = class_pin_counts(capacities, classes, pins)
                for run, g in pins:
                    assert totals.get((run, g), 0) == classes[run] * pinned[(run, g)]


class TestDispatcher:
    def test_frequency_plan(self, bigmart_space_h):
        plan = exact_strategy(bigmart_space_h)
        assert plan.strategy == "interval-dp"
        assert plan.feasible and plan.matchable
        assert sum(plan.block_sizes) == bigmart_space_h.n

    def test_explicit_plan(self, two_blocks_space):
        plan = exact_strategy(two_blocks_space)
        assert plan.strategy == "ryser"  # one connected component

    def test_large_explicit_block_is_infeasible(self):
        n = 25
        space = ExplicitMappingSpace(
            items=tuple(range(n)),
            anonymized=tuple(f"{i}'" for i in range(n)),
            adjacency=[list(range(n)) for _ in range(n)],
            true_partner_of=list(range(n)),
        )
        plan = exact_strategy(space)
        assert plan.strategy == "infeasible"
        assert not plan.feasible
        assert plan.largest_block == n
        assert "25" in plan.reason
        with pytest.raises(GraphError, match="Ryser limit"):
            count_matchings_exact(space)

    def test_limit_override_unlocks_larger_blocks(self):
        n = 25
        space = ExplicitMappingSpace(
            items=tuple(range(n)),
            anonymized=tuple(f"{i}'" for i in range(n)),
            # Two components: 13 + 12, each over the default per-test cost.
            adjacency=[
                list(range(13)) if i < 13 else list(range(13, n)) for i in range(n)
            ],
            true_partner_of=list(range(n)),
        )
        plan = exact_strategy(space, limit=12)
        assert not plan.feasible
        plan = exact_strategy(space, limit=13)
        assert plan.feasible and plan.strategy == "block-ryser"
        import math

        assert count_matchings_exact(space, limit=13) == math.factorial(13) * math.factorial(12)

    def test_interval_dp_beyond_ryser_cap(self):
        """A 1,000-item interval domain: exact E[X] under 5 s (acceptance)."""
        rng = np.random.default_rng(5)
        n = 1000
        frequencies = {i: round(0.001 * (i % 200) + 0.001, 9) for i in range(n)}
        intervals = {}
        for i, f in frequencies.items():
            w = int(rng.integers(0, 3))
            intervals[i] = (max(0.0, f - 0.001 * w), min(1.0, f + 0.001 * w))
        space = space_from_frequencies(interval_belief(intervals), frequencies)
        start = time.perf_counter()
        expected = expected_cracks_direct(space)
        elapsed = time.perf_counter() - start
        assert expected > 0
        assert elapsed < 5.0
        law = crack_distribution(space)
        assert float((np.arange(len(law)) * law).sum()) == pytest.approx(
            expected, rel=1e-9
        )

    def test_permanent_error_names_largest_block(self):
        with pytest.raises(GraphError, match="largest connected block has 23"):
            permanent(np.ones((23, 23)))

    def test_permanent_limit_keyword(self):
        matrix = np.ones((13, 13))
        import math

        assert permanent(matrix, limit=13) == pytest.approx(float(math.factorial(13)))
        with pytest.raises(GraphError, match="infeasible"):
            permanent(matrix, limit=12)

    def test_permanent_splits_blocks_beyond_limit(self):
        # 26 rows in two disconnected 13-blocks: over the limit as a
        # whole, fine block by block.
        import math

        matrix = np.zeros((26, 26))
        matrix[:13, :13] = 1.0
        matrix[13:, 13:] = 1.0
        assert permanent(matrix) == pytest.approx(float(math.factorial(13)) ** 2)

    def test_best_expected_cracks_ladder(self, bigmart_space_h):
        value, stderr, strategy = best_expected_cracks(bigmart_space_h)
        assert value == pytest.approx(1.8125)
        assert stderr == 0.0
        assert strategy == "interval-dp"


class TestBudgets:
    def test_dp_budget_exhaustion_raises(self):
        # Many overlapping wide runs with distinct deadlines blow a tiny
        # budget (a single class would collapse to one state per layer).
        capacities = tuple([2] * 12)
        classes = {(i, i + 6): 2 for i in range(7)}
        classes[(0, 12)] = 24 - sum(classes.values())
        tiny = DPBudget(max_states=2, max_ops=10)
        with pytest.raises(GraphError, match="budget"):
            assignment_count(capacities, classes, budget=tiny)
        with pytest.raises(GraphError, match="budget"):
            class_placement_totals(capacities, classes, budget=tiny)

    def test_auto_marginals_fall_back_to_mcmc_when_plan_expensive(self):
        # One dense 20-item explicit block: a feasible Ryser plan, but
        # its 20^2 * 2^20 cost hint exceeds the auto budget.
        n = 20
        space = ExplicitMappingSpace(
            items=tuple(range(n)),
            anonymized=tuple(f"{i}'" for i in range(n)),
            adjacency=[list(range(n)) for _ in range(n)],
            true_partner_of=list(range(n)),
        )
        rng = np.random.default_rng(3)
        marginals = crack_marginals(space, method="auto", n_samples=50, rng=rng)
        # The ignorant explicit space cracks each item with p = 1/n; MCMC
        # noise is fine, exactness would be suspicious.
        assert marginals.sum() == pytest.approx(1.0, abs=0.8)


class TestBlockDecomposition:
    def test_frequency_blocks_partition_items(self):
        rng = np.random.default_rng(31)
        for _ in range(50):
            space = random_interval_space(rng)
            decomposition = decompose(space)
            if not decomposition.matchable:
                continue
            items = sorted(
                i for block in decomposition.blocks for i in block.item_indices
            )
            assert items == list(range(space.n))
            for block in decomposition.blocks:
                assert block.balanced

    def test_unmatchable_detected(self):
        space = ExplicitMappingSpace(
            items=(1, 2),
            anonymized=("a", "b"),
            adjacency=[[0], [0]],
            true_partner_of=[0, 1],
        )
        decomposition = decompose(space)
        assert not decomposition.matchable
        assert count_matchings_exact(space) == 0


class TestSolverPreprocessing:
    """exact_strategy(preprocess=True): the workbench shrinks the plan."""

    def test_staircase_plan_is_pure_propagation(self, staircase_space):
        plan = exact_strategy(staircase_space, preprocess=True)
        assert plan.strategy == "propagation"
        assert plan.preprocessed
        assert plan.forced_pairs == 4
        assert plan.forbidden_edges == 6
        assert plan.largest_block == 0
        assert plan.largest_block_raw == 4
        assert plan.feasible and plan.matchable

    def test_two_blocks_largest_block_strictly_shrinks(self, two_blocks_space):
        plain = exact_strategy(two_blocks_space)
        pre = exact_strategy(two_blocks_space, preprocess=True)
        assert pre.preprocessed
        assert pre.largest_block_raw == plain.largest_block
        assert pre.largest_block < plain.largest_block
        assert pre.forbidden_edges >= 1  # the (2', 3) edge of Figure 6(b)

    def test_preprocessed_counts_and_marginals_agree(self, two_blocks_space):
        space = two_blocks_space
        assert count_matchings_exact(space, preprocess=True) == count_matchings_exact(space)
        np.testing.assert_allclose(
            crack_marginals_exact(space, preprocess=True),
            crack_marginals_exact(space),
        )
        assert expected_cracks_exact(space, preprocess=True) == pytest.approx(
            expected_cracks_exact(space)
        )

    def test_preprocessed_agrees_on_frequency_space(self, bigmart_space_h):
        space = bigmart_space_h
        plain = exact_strategy(space)
        pre = exact_strategy(space, preprocess=True)
        # The feasible interval-DP plan survives unless strictly beaten,
        # but the reduction stats ride along either way.
        assert pre.preprocessed
        assert pre.largest_block_raw == plain.largest_block
        assert count_matchings_exact(space, preprocess=True) == count_matchings_exact(space)
        np.testing.assert_allclose(
            crack_marginals_exact(space, preprocess=True),
            crack_marginals_exact(space),
        )

    def test_infeasible_instance_reported(self):
        space = ExplicitMappingSpace(
            items=(1, 2, 3),
            anonymized=("a", "b", "c"),
            adjacency=[[0, 1], [0, 1], [0, 1]],
            true_partner_of=[0, 1, 2],
        )
        plan = exact_strategy(space, preprocess=True)
        assert not plan.matchable
        assert plan.preprocessed

"""Unit tests for the matching-swap simulator (Section 7.1)."""

import numpy as np
import pytest

from repro.beliefs import ignorant_belief, point_belief
from repro.core import ChainSpec, chain_expected_cracks, space_from_chain
from repro.errors import SimulationError
from repro.graph import expected_cracks_direct, space_from_frequencies
from repro.simulation import MatchingSampler, SimulationResult, simulate_expected_cracks


class TestMatchingSampler:
    def test_seeds_consistent(self, bigmart_space_h, rng):
        sampler = MatchingSampler(bigmart_space_h, rng=rng)
        assert sampler.check_consistency()
        assert sampler.crack_count() == 6  # seeded from the truth

    def test_invariants_survive_sweeps(self, bigmart_space_h, rng):
        sampler = MatchingSampler(bigmart_space_h, rng=rng)
        sampler.sweep(50)
        assert sampler.check_consistency()

    def test_invariants_survive_proposals(self, bigmart_space_h, rng):
        sampler = MatchingSampler(bigmart_space_h, rng=rng)
        sampler.propose(500)
        assert sampler.check_consistency()

    def test_chain_moves_away_from_seed(self, bigmart_space_h, rng):
        sampler = MatchingSampler(bigmart_space_h, rng=rng)
        accepted = sampler.sweep(10)
        assert accepted > 0

    def test_explicit_space_supported(self, two_blocks_space, rng):
        sampler = MatchingSampler(two_blocks_space, rng=rng)
        sampler.sweep(20)
        assert sampler.check_consistency()

    def test_rao_blackwell_needs_frequency_space(self, two_blocks_space, rng):
        sampler = MatchingSampler(two_blocks_space, rng=rng)
        with pytest.raises(SimulationError):
            sampler.rao_blackwell_cracks()

    def test_rao_blackwell_bounds(self, bigmart_space_h, rng):
        sampler = MatchingSampler(bigmart_space_h, rng=rng)
        sampler.sweep(5)
        value = sampler.rao_blackwell_cracks()
        assert 0.0 <= value <= bigmart_space_h.n


class TestGibbsSampler:
    def test_matches_direct_method(self, bigmart_space_h):
        exact = expected_cracks_direct(bigmart_space_h)
        result = simulate_expected_cracks(
            bigmart_space_h,
            runs=5,
            samples_per_run=600,
            rng=np.random.default_rng(21),
            method="gibbs",
            rao_blackwell=True,
        )
        assert result.mean == pytest.approx(exact, abs=max(4 * result.std, 0.1))

    def test_matches_chain_formula(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        space = space_from_chain(spec)
        result = simulate_expected_cracks(
            space,
            runs=5,
            samples_per_run=600,
            rng=np.random.default_rng(31),
            method="gibbs",
        )
        assert result.mean == pytest.approx(
            chain_expected_cracks(spec), abs=max(4 * result.std, 0.15)
        )

    def test_state_invariants(self, bigmart_space_h, rng):
        from repro.simulation import GibbsAssignmentSampler

        sampler = GibbsAssignmentSampler(bigmart_space_h, rng=rng)
        assert sampler.check_consistency()
        sampler.sweep(30)
        assert sampler.check_consistency()
        assert 0 <= sampler.crack_count() <= bigmart_space_h.n
        assert 0.0 <= sampler.rao_blackwell_cracks() <= bigmart_space_h.n

    def test_explicit_space_rejected(self, two_blocks_space, rng):
        from repro.simulation import GibbsAssignmentSampler

        with pytest.raises(SimulationError):
            GibbsAssignmentSampler(two_blocks_space, rng=rng)
        with pytest.raises(SimulationError):
            simulate_expected_cracks(two_blocks_space, method="gibbs", rng=rng)

    def test_unknown_method_rejected(self, bigmart_space_h, rng):
        with pytest.raises(SimulationError):
            simulate_expected_cracks(bigmart_space_h, method="metropolis", rng=rng)

    def test_swap_and_gibbs_agree(self, bigmart_space_h):
        swap = simulate_expected_cracks(
            bigmart_space_h, runs=4, samples_per_run=400, rng=np.random.default_rng(6)
        )
        gibbs = simulate_expected_cracks(
            bigmart_space_h,
            runs=4,
            samples_per_run=400,
            rng=np.random.default_rng(6),
            method="gibbs",
        )
        assert swap.mean == pytest.approx(gibbs.mean, abs=0.25)


class TestSimulateExpectedCracks:
    def test_matches_direct_method_bigmart(self, bigmart_space_h):
        exact = expected_cracks_direct(bigmart_space_h)
        result = simulate_expected_cracks(
            bigmart_space_h, runs=5, samples_per_run=400, rng=np.random.default_rng(42)
        )
        assert result.mean == pytest.approx(exact, abs=max(3 * result.std, 0.15))

    def test_matches_chain_formula(self):
        spec = ChainSpec((5, 3), (3, 2), (3,))
        space = space_from_chain(spec)
        result = simulate_expected_cracks(
            space, runs=5, samples_per_run=400, rng=np.random.default_rng(7)
        )
        assert result.mean == pytest.approx(
            chain_expected_cracks(spec), abs=max(3 * result.std, 0.15)
        )

    def test_ignorant_close_to_one(self, bigmart_frequencies):
        space = space_from_frequencies(
            ignorant_belief(bigmart_frequencies), bigmart_frequencies
        )
        result = simulate_expected_cracks(
            space, runs=3, samples_per_run=300, rng=np.random.default_rng(3)
        )
        assert result.mean == pytest.approx(1.0, abs=0.3)

    def test_point_valued_is_exact_g(self, bigmart_frequencies):
        # Singleton groups are pinned; the 4-item group mixes to E=1:
        # simulation should stay near g = 3.
        space = space_from_frequencies(
            point_belief(bigmart_frequencies), bigmart_frequencies
        )
        result = simulate_expected_cracks(
            space, runs=3, samples_per_run=300, rng=np.random.default_rng(4)
        )
        assert result.mean == pytest.approx(3.0, abs=0.3)

    def test_rao_blackwell_same_mean_lower_std(self, bigmart_space_h):
        plain = simulate_expected_cracks(
            bigmart_space_h, runs=5, samples_per_run=300, rng=np.random.default_rng(10)
        )
        rao = simulate_expected_cracks(
            bigmart_space_h,
            runs=5,
            samples_per_run=300,
            rng=np.random.default_rng(10),
            rao_blackwell=True,
        )
        exact = expected_cracks_direct(bigmart_space_h)
        assert rao.mean == pytest.approx(exact, abs=max(3 * rao.std, 0.1))
        assert rao.std <= plain.std + 0.05

    def test_result_metadata(self, bigmart_space_h, rng):
        result = simulate_expected_cracks(
            bigmart_space_h, runs=4, samples_per_run=50, rng=rng
        )
        assert isinstance(result, SimulationResult)
        assert len(result.run_means) == 4
        assert result.n == 6
        assert result.n_samples_per_run == 50
        assert result.fraction == pytest.approx(result.mean / 6)

    def test_within_one_std_helper(self):
        result = SimulationResult(
            mean=2.0, std=0.5, run_means=(1.5, 2.5), n=6, n_samples_per_run=10
        )
        assert result.within_one_std(2.4)
        assert not result.within_one_std(2.6)

    def test_invalid_parameters(self, bigmart_space_h, rng):
        with pytest.raises(SimulationError):
            simulate_expected_cracks(bigmart_space_h, runs=0, rng=rng)
        with pytest.raises(SimulationError):
            simulate_expected_cracks(bigmart_space_h, samples_per_run=0, rng=rng)

    def test_rao_blackwell_rejected_on_explicit(self, two_blocks_space, rng):
        with pytest.raises(SimulationError):
            simulate_expected_cracks(two_blocks_space, rao_blackwell=True, rng=rng)

    def test_reseeding_path(self, bigmart_space_h, rng):
        # samples_per_seed smaller than samples_per_run exercises re-seeding.
        result = simulate_expected_cracks(
            bigmart_space_h,
            runs=2,
            samples_per_run=30,
            samples_per_seed=10,
            rng=rng,
        )
        assert len(result.run_means) == 2

"""Unit tests for JSON persistence of workflow artifacts."""

import numpy as np
import pytest

from repro.beliefs import interval_belief, point_belief
from repro.data import FrequencyProfile
from repro.errors import FormatError
from repro.io import (
    assessment_from_json,
    assessment_to_json,
    belief_from_json,
    belief_to_json,
    load_json,
    profile_from_json,
    profile_to_json,
    save_json,
)
from repro.recipe import assess_risk


class TestBeliefRoundtrip:
    def test_interval_belief(self, belief_h):
        assert belief_from_json(belief_to_json(belief_h)) == belief_h

    def test_point_belief(self, bigmart_frequencies):
        belief = point_belief(bigmart_frequencies)
        assert belief_from_json(belief_to_json(belief)) == belief

    def test_string_items(self):
        belief = interval_belief({"milk": (0.1, 0.4), "bread": 0.3})
        assert belief_from_json(belief_to_json(belief)) == belief

    def test_int_and_string_items_distinguished(self):
        belief = interval_belief({1: 0.5, "1": 0.3})
        restored = belief_from_json(belief_to_json(belief))
        assert restored[1].low == 0.5
        assert restored["1"].low == 0.3

    def test_unserializable_item_rejected(self):
        belief = interval_belief({(1, 2): 0.5})
        with pytest.raises(FormatError):
            belief_to_json(belief)

    def test_wrong_payload_type(self):
        with pytest.raises(FormatError):
            belief_from_json({"type": "something_else"})

    def test_malformed_entry(self):
        with pytest.raises(FormatError):
            belief_from_json({"type": "belief_function", "intervals": [[1, 2]]})


class TestProfileRoundtrip:
    def test_roundtrip(self):
        profile = FrequencyProfile({1: 3, 2: 7, "odd": 1}, 10)
        assert profile_from_json(profile_to_json(profile)) == profile

    def test_wrong_type(self):
        with pytest.raises(FormatError):
            profile_from_json({"type": "belief_function"})


class TestAssessmentRoundtrip:
    def test_disclose_assessment(self):
        profile = FrequencyProfile({i: 10 for i in range(1, 11)}, 100)
        report = assess_risk(profile, tolerance=0.5, delta=0.01)
        restored = assessment_from_json(assessment_to_json(report))
        assert restored == report

    def test_alpha_assessment(self):
        profile = FrequencyProfile({i: 40 * i for i in range(1, 21)}, 1000)
        report = assess_risk(profile, tolerance=0.1, rng=np.random.default_rng(0))
        restored = assessment_from_json(assessment_to_json(report))
        assert restored.decision == report.decision
        assert restored.alpha_max == report.alpha_max
        assert restored.interval_estimate == report.interval_estimate

    def test_unknown_decision_rejected(self):
        with pytest.raises(FormatError):
            assessment_from_json(
                {"type": "risk_assessment", "decision": "PANIC", "tolerance": 0.1,
                 "n_items": 5, "g": 3}
            )


class TestFiles:
    def test_save_and_load(self, tmp_path, belief_h):
        path = tmp_path / "belief.json"
        save_json(belief_to_json(belief_h), path)
        assert belief_from_json(load_json(path)) == belief_h

    def test_invalid_json_reported(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(FormatError, match="invalid JSON"):
            load_json(path)


class TestAttackBlock:
    def _report(self):
        from repro.recipe.assess import AttackSummary, Decision, RiskAssessment

        return RiskAssessment(
            decision=Decision.DISCLOSE_INTERVAL,
            tolerance=0.2,
            n_items=4,
            g=3,
            delta=0.01,
            attack=AttackSummary(
                forced_pairs=2,
                certified_cracks=2,
                forbidden_edges=3,
                largest_block_before=4,
                largest_block_after=2,
            ),
        )

    def test_attack_round_trip(self):
        payload = assessment_to_json(self._report())
        assert payload["schema_version"] == 4
        assert payload["attack"]["forced_pairs"] == 2
        assert payload["attack"]["solver_reduction"]["largest_block_after"] == 2
        assert assessment_from_json(payload) == self._report()

    def test_version_3_payload_still_loads(self):
        payload = assessment_to_json(self._report())
        del payload["attack"]
        payload["schema_version"] = 3
        restored = assessment_from_json(payload)
        assert restored.attack is None
        assert restored.decision == self._report().decision

    def test_malformed_attack_block_rejected(self):
        payload = assessment_to_json(self._report())
        payload["attack"] = {"forced_pairs": 1}
        with pytest.raises(FormatError, match="solver_reduction"):
            assessment_from_json(payload)

    def test_recipe_output_carries_attack(self):
        profile = FrequencyProfile({i: 10 * i for i in range(1, 9)}, 500)
        report = assess_risk(profile, tolerance=0.05, rng=np.random.default_rng(1))
        payload = assessment_to_json(report)
        restored = assessment_from_json(payload)
        assert restored.attack == report.attack

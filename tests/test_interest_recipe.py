"""Tests for items-of-interest support across the recipe (Lemmas 2 and 4)."""

import numpy as np
import pytest

from repro.beliefs import uniform_width_belief
from repro.core import alpha_max, o_estimate
from repro.data import FrequencyProfile
from repro.errors import RecipeError
from repro.graph import space_from_frequencies
from repro.recipe import Decision, assess_risk


@pytest.fixture
def mixed_profile():
    """Half the items are singletons (exposed), half share one count."""
    counts = {i: 40 * i for i in range(1, 11)}  # distinct: exposed
    counts.update({i: 7 for i in range(11, 21)})  # one shared count: camouflaged
    return FrequencyProfile(counts, 1000)


class TestAssessRiskWithInterest:
    def test_camouflaged_interest_discloses(self, mixed_profile):
        # The owner only cares about the camouflaged items: Lemma 4 gives
        # one expected crack among 10 items of interest.
        report = assess_risk(
            mixed_profile, tolerance=0.2, interest=range(11, 21),
            rng=np.random.default_rng(0),
        )
        assert report.decision is Decision.DISCLOSE_POINT_VALUED

    def test_exposed_interest_does_not(self, mixed_profile):
        report = assess_risk(
            mixed_profile, tolerance=0.2, interest=range(1, 11),
            rng=np.random.default_rng(0),
        )
        assert report.decision is Decision.ALPHA_BOUND
        assert report.alpha_max < 1.0

    def test_full_interest_matches_default(self, mixed_profile):
        default = assess_risk(mixed_profile, 0.1, rng=np.random.default_rng(1))
        explicit = assess_risk(
            mixed_profile, 0.1, interest=mixed_profile.domain,
            rng=np.random.default_rng(1),
        )
        assert default.decision == explicit.decision
        if default.alpha_max is not None:
            assert explicit.alpha_max == pytest.approx(default.alpha_max, abs=0.05)

    def test_empty_interest_rejected(self, mixed_profile):
        with pytest.raises(RecipeError):
            assess_risk(mixed_profile, 0.1, interest=[])


class TestAlphaMaxWithInterest:
    def test_interest_budget_is_subset_relative(self, mixed_profile):
        frequencies = mixed_profile.frequencies()
        from repro.data import FrequencyGroups

        delta = FrequencyGroups(frequencies).median_gap()
        space = space_from_frequencies(
            uniform_width_belief(frequencies, delta), frequencies
        )
        exposed = list(range(1, 11))
        camouflaged = list(range(11, 21))
        rng = np.random.default_rng(2)
        alpha_exposed = alpha_max(space, 0.2, rng=rng, interest=exposed)
        rng = np.random.default_rng(2)
        alpha_camouflaged = alpha_max(space, 0.2, rng=rng, interest=camouflaged)
        assert alpha_camouflaged > alpha_exposed

    def test_interest_oe_consistency(self, mixed_profile):
        frequencies = mixed_profile.frequencies()
        space = space_from_frequencies(
            uniform_width_belief(frequencies, 0.001), frequencies
        )
        subset = list(range(1, 6))
        estimate = o_estimate(space, interest=subset)
        full = o_estimate(space)
        assert estimate.value <= full.value
        # With everything compliant, alpha = 1 reproduces the subset OE.
        from repro.core.alpha import compliance_prefix_sums

        prefix = compliance_prefix_sums(
            space, runs=3, rng=np.random.default_rng(3), interest=subset
        )
        assert prefix[:, -1] == pytest.approx(np.full(3, estimate.value))

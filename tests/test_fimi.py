"""Unit tests for FIMI .dat reading and writing."""

import pytest

from repro.data import TransactionDatabase, read_fimi, write_fimi
from repro.errors import FormatError


def test_roundtrip(tmp_path):
    db = TransactionDatabase([[3, 1, 2], [5], [2, 5]])
    path = tmp_path / "data.dat"
    write_fimi(db, path)
    loaded = read_fimi(path)
    assert loaded == db


def test_file_is_sorted_per_line(tmp_path):
    db = TransactionDatabase([[3, 1, 2]])
    path = tmp_path / "data.dat"
    write_fimi(db, path)
    assert path.read_text() == "1 2 3\n"


def test_gzip_roundtrip(tmp_path):
    db = TransactionDatabase([[1, 2], [3]])
    path = tmp_path / "data.dat.gz"
    write_fimi(db, path)
    assert read_fimi(path) == db


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "data.dat"
    path.write_text("1 2\n\n3\n")
    db = read_fimi(path)
    assert len(db) == 2


def test_non_integer_token_rejected_with_line_number(tmp_path):
    path = tmp_path / "bad.dat"
    path.write_text("1 2\nx 3\n")
    with pytest.raises(FormatError, match=":2"):
        read_fimi(path)


def test_duplicate_items_in_line_collapse(tmp_path):
    path = tmp_path / "data.dat"
    path.write_text("7 7 7\n")
    db = read_fimi(path)
    assert db[0] == frozenset({7})


def test_explicit_domain_passed_through(tmp_path):
    path = tmp_path / "data.dat"
    path.write_text("1\n")
    db = read_fimi(path, domain=[1, 2, 3])
    assert db.domain == frozenset({1, 2, 3})


def test_write_rejects_non_integer_items(tmp_path):
    db = TransactionDatabase([["milk"]])
    with pytest.raises(FormatError, match="integer"):
        write_fimi(db, tmp_path / "out.dat")
